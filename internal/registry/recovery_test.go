package registry

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"pulphd/internal/fault"
	"pulphd/internal/hdc"
)

// This file is the crash-consistency proof of the registry: property
// tests drive random online-learning sequences against a persistent
// registry, kill it without Close (a process crash loses nothing the
// page cache holds), corrupt or tear the WAL tail the way a real
// crash or bad sector would, and assert the reopened registry is
// byte-identical to some acknowledged prefix of the original model —
// never a torn hybrid, never older than the last snapshot.

// crashTrial is one randomized crash-recovery scenario.
type crashTrial struct {
	backend hdc.Backend
	// corrupt selects what happens to the WAL between crash and
	// recovery: "clean" nothing, "truncate" a random tear, "bitflip" a
	// fault-model XOR over the tail bytes.
	corrupt string
}

func TestCrashRecoveryProperty(t *testing.T) {
	trials := []crashTrial{
		{hdc.BackendStored, "clean"},
		{hdc.BackendStored, "truncate"},
		{hdc.BackendStored, "bitflip"},
		{hdc.BackendRemat, "clean"},
		{hdc.BackendRemat, "truncate"},
		{hdc.BackendRemat, "bitflip"},
	}
	for _, trial := range trials {
		trial := trial
		t.Run(fmt.Sprintf("%s_%s", trial.backend, trial.corrupt), func(t *testing.T) {
			for round := int64(0); round < 3; round++ {
				runCrashTrial(t, trial, round)
			}
		})
	}
}

// runCrashTrial drives one random Learn/Correct sequence with
// snapshots at random points, crashes (no Close), corrupts the WAL
// per the trial, reopens, and checks the recovered model against the
// mirror's state history.
func runCrashTrial(t *testing.T, trial crashTrial, round int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(round*1000 + int64(trial.backend)*100 + int64(len(trial.corrupt))))
	cfg := testConfig(trial.backend)
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir, Shards: 2, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("m", cfg); err != nil {
		t.Fatal(err)
	}
	// mirror applies the identical sequence in memory; stateAt[g] is
	// its serialized state at generation g.
	mirror, err := hdc.NewServing(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	stateAt := [][]byte{servingBytes(t, mirror)}
	labels := []string{"rest", "fist", "point", "grip"}
	ops := 10 + rng.Intn(20)
	lastSnapGen := uint64(0)
	for i := 0; i < ops; i++ {
		label := labels[rng.Intn(len(labels))]
		window := randomWindow(cfg, rng)
		var applyErr error
		if rng.Intn(3) == 0 {
			applyErr = r.Correct("m", label, window)
		} else {
			applyErr = r.Learn("m", label, window)
		}
		if applyErr != nil {
			t.Fatalf("op %d: %v", i, applyErr)
		}
		if err := mirror.Learn(label, window); err != nil {
			t.Fatalf("mirror op %d: %v", i, err)
		}
		stateAt = append(stateAt, servingBytes(t, mirror))
		if rng.Intn(8) == 0 {
			if err := r.Snapshot("m"); err != nil {
				t.Fatal(err)
			}
			lastSnapGen = uint64(i + 1)
		}
	}
	finalGen := uint64(ops)

	// Crash: the registry is dropped without Close. Open WAL file
	// handles die with the process; the bytes written are in the page
	// cache and survive.
	walPath := r.walPath("m")
	switch trial.corrupt {
	case "truncate":
		tearTail(t, walPath, rng)
	case "bitflip":
		flipTail(t, walPath, rng, round)
	}

	r2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("reopening after crash: %v", err)
	}
	defer r2.Close()
	sv, err := r2.Serving("m")
	if err != nil {
		t.Fatalf("recovering model: %v", err)
	}
	gen := sv.Generation()
	if trial.corrupt == "clean" && gen != finalGen {
		t.Fatalf("clean crash recovered generation %d, want %d", gen, finalGen)
	}
	if gen < lastSnapGen {
		t.Fatalf("recovered generation %d older than last snapshot %d", gen, lastSnapGen)
	}
	if gen > finalGen {
		t.Fatalf("recovered generation %d beyond anything acknowledged (%d)", gen, finalGen)
	}
	// The recovered model is byte-identical to the mirror at the same
	// generation: an exact acknowledged prefix, never a torn hybrid.
	if got := servingBytes(t, sv); !bytes.Equal(got, stateAt[gen]) {
		t.Fatalf("recovered state at generation %d differs from the mirror prefix", gen)
	}
}

// tearTail truncates the WAL at a random byte short of its end, as a
// crash mid-append would.
func tearTail(t *testing.T, path string, rng *rand.Rand) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		return
	}
	if err := os.Truncate(path, rng.Int63n(st.Size())); err != nil {
		t.Fatal(err)
	}
}

// flipTail XORs a deterministic fault-model bit mask over the WAL's
// tail bytes — the same bit-error channel internal/fault injects into
// memories, aimed at the log. CRC framing must contain the damage to
// a dropped suffix.
func flipTail(t *testing.T, path string, rng *rand.Rand, seed int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4 {
		return
	}
	start := rng.Intn(len(data))
	m := fault.Model{BER: 0.01, Seed: seed + 1}
	words := make([]uint32, (len(data)-start+3)/4)
	for i := range words {
		end := min(start+4*i+4, len(data))
		var w [4]byte
		copy(w[:], data[start+4*i:end])
		words[i] = binary.LittleEndian.Uint32(w[:])
	}
	m.CorruptWords(fault.SiteOf(fault.PointDMA, 0), words, 32)
	for i := range words {
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], words[i])
		copy(data[start+4*i:min(start+4*i+4, len(data))], w[:])
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestKillNineRecoversEveryModel is the acceptance scenario: several
// models take online learns, the process dies without any shutdown
// (registry never closed, WAL never fsynced), and a fresh process
// recovers every model to its exact pre-kill generation, byte for
// byte.
func TestKillNineRecoversEveryModel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir, Shards: 2, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	type tenant struct {
		name    string
		backend hdc.Backend
		mirror  *hdc.Serving
	}
	tenants := []*tenant{
		{name: "emg-a", backend: hdc.BackendStored},
		{name: "emg-b", backend: hdc.BackendStored},
		{name: "emg-c", backend: hdc.BackendRemat},
	}
	for _, tn := range tenants {
		cfg := testConfig(tn.backend)
		if _, err := r.Create(tn.name, cfg); err != nil {
			t.Fatal(err)
		}
		tn.mirror, err = hdc.NewServing(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	labels := []string{"rest", "fist", "point"}
	for i := 0; i < 60; i++ {
		tn := tenants[rng.Intn(len(tenants))]
		cfg := testConfig(tn.backend)
		label := labels[rng.Intn(len(labels))]
		window := randomWindow(cfg, rng)
		if err := r.Learn(tn.name, label, window); err != nil {
			t.Fatal(err)
		}
		if err := tn.mirror.Learn(label, window); err != nil {
			t.Fatal(err)
		}
	}
	// kill -9: no Close, no snapshot, WAL handles abandoned.
	r2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer r2.Close()
	if r2.Len() != len(tenants) {
		t.Fatalf("restart found %d models, want %d", r2.Len(), len(tenants))
	}
	for _, tn := range tenants {
		sv, err := r2.Serving(tn.name)
		if err != nil {
			t.Fatalf("recovering %s: %v", tn.name, err)
		}
		if sv.Generation() != tn.mirror.Generation() {
			t.Fatalf("%s recovered at generation %d, want exact pre-kill %d",
				tn.name, sv.Generation(), tn.mirror.Generation())
		}
		if !bytes.Equal(servingBytes(t, sv), servingBytes(t, tn.mirror)) {
			t.Fatalf("%s recovered state differs from pre-kill state", tn.name)
		}
	}
}

// TestRecoveryAcrossSnapshotCrashGap pins the checkpoint-LSN guard: a
// crash between "snapshot renamed into place" and "WAL truncated"
// leaves the full WAL next to a snapshot that already folded some of
// it in. Replay must skip the already-folded records or the model
// double-applies its own history.
func TestRecoveryAcrossSnapshotCrashGap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := testConfig(hdc.BackendStored)
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir, Shards: 2, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("m", cfg); err != nil {
		t.Fatal(err)
	}
	mirror, err := hdc.NewServing(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(label string) {
		t.Helper()
		w := randomWindow(cfg, rng)
		if err := r.Learn("m", label, w); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Learn(label, w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		apply("fist")
	}
	// Save the 5-record WAL, snapshot (which truncates it), then put
	// the stale full WAL back — exactly the on-disk picture of a crash
	// in the gap.
	staleWAL, err := os.ReadFile(r.walPath("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot("m"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.walPath("m"), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	sv, err := r2.Serving("m")
	if err != nil {
		t.Fatal(err)
	}
	if sv.Generation() != 5 {
		t.Fatalf("recovered generation %d, want 5 (stale records must not double-apply)", sv.Generation())
	}
	if !bytes.Equal(servingBytes(t, sv), servingBytes(t, mirror)) {
		t.Fatal("recovered state differs after snapshot-gap crash")
	}
	// And learning continues cleanly from the recovered state.
	w := randomWindow(cfg, rng)
	if err := r2.Learn("m", "rest", w); err != nil {
		t.Fatal(err)
	}
	if err := mirror.Learn("rest", w); err != nil {
		t.Fatal(err)
	}
	sv2, _ := r2.Serving("m")
	if !bytes.Equal(servingBytes(t, sv2), servingBytes(t, mirror)) {
		t.Fatal("post-recovery learn diverged from the mirror")
	}
}
