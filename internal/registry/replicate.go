package registry

import (
	"context"
	"fmt"
	"io"

	"pulphd/internal/hdc"
	"pulphd/internal/model"
	"pulphd/internal/obs"
)

// This file is the registry's replication surface: a primary exports
// consistent generation-stamped snapshots, a replica installs them
// under the same atomic served pointer every other path uses. Neither
// side needs anything beyond the machinery the registry already has —
// State() cuts are learner-lock consistent, snapshots carry a CRC
// trailer, and an Install is one pointer store.

// ExportServing streams name's complete serving state to w in
// snapshot format (PULPHD03) and returns the generation the cut was
// taken at. The cut is consistent — State() serializes against Learn —
// so the bytes always describe exactly the returned generation. Cold
// models fault in first (their WAL tail folds in during fault-in, so
// the export is never stale). The snapshot is written with walSeq 0:
// the receiver owns no WAL pairing for it.
func (r *Registry) ExportServing(ctx context.Context, name string, w io.Writer) (uint64, error) {
	sv, err := r.ServingCtx(ctx, name)
	if err != nil {
		return 0, err
	}
	st := sv.State()
	if err := model.SaveServingState(w, sv.Config(), st, 0); err != nil {
		return 0, err
	}
	return st.Generation, nil
}

// Install publishes sv under name, replacing any existing model's
// served state — the replica-side apply path. The swap is one atomic
// pointer store: predicts in flight keep whichever generation they
// already resolved, new predicts see the installed one, and nothing
// blocks. The entry's drift monitor survives the swap (feedback is
// process-local and should not reset every sync cycle).
//
// Install requires an ephemeral registry. Replicas do not own
// durability — the primary does — and installing over a persistent
// entry would desynchronize a WAL this path deliberately bypasses.
func (r *Registry) Install(name string, sv *hdc.Serving) error {
	if err := ValidateModelName(name); err != nil {
		return err
	}
	if r.Persistent() {
		return fmt.Errorf("registry: Install requires an ephemeral registry (replicas do not own durability)")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name, drift: obs.NewDriftMonitor()}
		r.entries[name] = e
	}
	r.mu.Unlock()
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.sv.Store(sv)
	e.generation = sv.Generation()
	e.classes = sv.Classes()
	e.mu.Unlock()
	r.touch(e)
	m := r.m()
	m.RecordOp(name, "install")
	m.RecordModelState(name, sv.Generation(), sv.Classes(), sv.ResidentBytes(), 0)
	r.recordFleet()
	return nil
}
