package registry

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pulphd/internal/hdc"
)

// TestRegistryIsolationHammer hammers N tenant models with concurrent
// predicts, learns, snapshots, evictions and fault-ins, and checks the
// isolation invariants the multi-tenant contract promises:
//
//   - a tenant's predictions only ever name labels that tenant taught
//     (no cross-tenant leakage, even mid-evict or mid-fault-in);
//   - a tenant's generation never moves backwards;
//   - concurrent admin churn (snapshot, budget enforcement) never
//     surfaces an error or a torn model.
//
// Run it under -race: the two-level lock order and the atomic
// Serving pointer are the things it exists to catch regressions in.
func TestRegistryIsolationHammer(t *testing.T) {
	const tenants = 4
	const opsPerWorker = 60
	cfg := testConfig(hdc.BackendStored)
	r, err := Open(Config{Dir: t.TempDir(), Shards: 2, ResidentBudget: 3 * 1 << 20, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Each tenant has a disjoint label alphabet: tenant i teaches only
	// "t<i>-..." labels, so any foreign label in a prediction is
	// cross-tenant leakage.
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
		if _, err := r.Create(names[i], cfg); err != nil {
			t.Fatal(err)
		}
		// Seed two classes so predicts have something to answer with.
		rng := rand.New(rand.NewSource(int64(i)))
		for k := 0; k < 2; k++ {
			label := fmt.Sprintf("t%d-g%d", i, k)
			if err := r.Learn(names[i], label, randomWindow(cfg, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var lastGen [tenants]atomic.Uint64
	var failures atomic.Int32
	fail := func(format string, args ...any) {
		if failures.Add(1) < 10 {
			t.Errorf(format, args...)
		}
	}
	var wg sync.WaitGroup
	// Two workers per tenant mixing predicts and learns, plus one admin
	// worker cycling snapshot/evict across all tenants.
	for i := 0; i < tenants; i++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(tenant, worker int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(tenant*100 + worker)))
				name := names[tenant]
				prefix := fmt.Sprintf("t%d-", tenant)
				for n := 0; n < opsPerWorker; n++ {
					switch rng.Intn(3) {
					case 0:
						label := fmt.Sprintf("t%d-g%d", tenant, rng.Intn(3))
						if err := r.Learn(name, label, randomWindow(cfg, rng)); err != nil {
							fail("tenant %d learn: %v", tenant, err)
							return
						}
					case 1:
						sv, err := r.Serving(name)
						if err != nil {
							fail("tenant %d serving: %v", tenant, err)
							return
						}
						label, _ := sv.Predict(randomWindow(cfg, rng))
						if !strings.HasPrefix(label, prefix) {
							fail("tenant %d predicted foreign label %q", tenant, label)
							return
						}
						gen := sv.Generation()
						for {
							prev := lastGen[tenant].Load()
							if gen <= prev {
								break
							}
							if lastGen[tenant].CompareAndSwap(prev, gen) {
								break
							}
						}
					default:
						info, err := r.ModelInfo(name)
						if err != nil {
							fail("tenant %d info: %v", tenant, err)
							return
						}
						if prev := lastGen[tenant].Load(); info.Resident && info.Generation < prev {
							fail("tenant %d generation went backwards: %d after %d", tenant, info.Generation, prev)
							return
						}
					}
				}
			}(i, w)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for n := 0; n < opsPerWorker*tenants; n++ {
			name := names[rng.Intn(tenants)]
			switch rng.Intn(3) {
			case 0:
				if err := r.Snapshot(name); err != nil {
					fail("admin snapshot %s: %v", name, err)
					return
				}
			case 1:
				r.EnforceBudget()
			default:
				r.List()
			}
		}
	}()
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d isolation violations", n)
	}

	// After the storm every tenant still recovers from disk to a model
	// holding only its own labels.
	for i, name := range names {
		sv, err := r.Serving(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, label := range sv.Labels() {
			if !strings.HasPrefix(label, fmt.Sprintf("t%d-", i)) {
				t.Fatalf("tenant %d ended up with foreign class %q", i, label)
			}
		}
	}
}
