package registry

import (
	"context"
	"math/rand"
	"testing"

	"pulphd/internal/hdc"
	"pulphd/internal/obs"
)

// spanNames collects the names of every span a recorder holds.
func spanNames(rec *obs.Spans) map[string]int {
	names := map[string]int{}
	for i := 0; i < rec.Len(); i++ {
		names[rec.Span(i).Name]++
	}
	return names
}

// TestLifecycleSpans threads a span recorder through the registry's
// write and recovery paths and asserts every lifecycle stage shows up
// in the request timeline: wal.append and wal.fsync under a durable
// learn, registry.snapshot when the cadence fires, registry.evict
// under budget pressure, and registry.faultin / registry.recover when
// a cold model loads — plus the fsync and fault-in latency histograms
// moving alongside.
func TestLifecycleSpans(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewRegistryMetrics()
	cfg := testConfig(hdc.BackendStored)
	rng := rand.New(rand.NewSource(7))

	r, err := Open(Config{Dir: dir, Shards: 2, SyncWAL: true, SnapshotEvery: 1, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("emg", cfg); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpans(64)
	ctx := obs.WithSpans(context.Background(), rec)
	if err := r.LearnCtx(ctx, "emg", "rest", randomWindow(cfg, rng)); err != nil {
		t.Fatal(err)
	}
	names := spanNames(rec)
	for _, want := range []string{"wal.append", "wal.fsync", "registry.snapshot"} {
		if names[want] == 0 {
			t.Errorf("durable learn timeline lacks %s span: %v", want, names)
		}
	}
	if m.WALFsyncNanos.Snapshot().Count == 0 {
		t.Error("wal fsync histogram did not move under SyncWAL")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a 1-byte budget: the first ServingCtx faults the model
	// in (recover span included), and learning a second model evicts the
	// first — all inside the recorders that asked for the work.
	r2, err := Open(Config{Dir: dir, Shards: 2, ResidentBudget: 1, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rec2 := obs.NewSpans(64)
	ctx2 := obs.WithSpans(context.Background(), rec2)
	if _, err := r2.ServingCtx(ctx2, "emg"); err != nil {
		t.Fatal(err)
	}
	names2 := spanNames(rec2)
	for _, want := range []string{"registry.faultin", "registry.recover"} {
		if names2[want] == 0 {
			t.Errorf("fault-in timeline lacks %s span: %v", want, names2)
		}
	}
	if m.FaultInNanos.Snapshot().Count == 0 {
		t.Error("fault-in histogram did not move")
	}

	if _, err := r2.Create("other", cfg); err != nil {
		t.Fatal(err)
	}
	// Make emg resident again so the learn against other must evict it
	// under the 1-byte budget — inside the learn's own timeline.
	if _, err := r2.ServingCtx(context.Background(), "emg"); err != nil {
		t.Fatal(err)
	}
	rec3 := obs.NewSpans(64)
	ctx3 := obs.WithSpans(context.Background(), rec3)
	if err := r2.LearnCtx(ctx3, "other", "fist", randomWindow(cfg, rng)); err != nil {
		t.Fatal(err)
	}
	names3 := spanNames(rec3)
	if names3["registry.evict"] == 0 {
		t.Errorf("budget-pressure learn timeline lacks registry.evict span: %v", names3)
	}
}
