package registry

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testRecord builds a small, valid record with distinguishable values.
func testRecord(seq uint64, op Op, label string, rows, cols int) Record {
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = float64(seq)*100 + float64(r*cols+c)
		}
	}
	return Record{Seq: seq, Op: op, Label: label, Window: w}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []Record{
		testRecord(1, OpLearn, "fist", 1, 4),
		testRecord(2, OpCorrect, "rest", 3, 2),
		testRecord(1<<40, OpLearn, string(bytes.Repeat([]byte{'x'}, maxWALLabelLen)), 1, 1),
	}
	var buf []byte
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	got, valid, defect := DecodeAll(buf)
	if defect != nil {
		t.Fatalf("decoding clean log: %v", defect)
	}
	if valid != len(buf) {
		t.Fatalf("consumed %d of %d bytes", valid, len(buf))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestWALDecodeRejectsCorruption(t *testing.T) {
	frame := AppendRecord(nil, testRecord(7, OpLearn, "a", 2, 3))
	// Flipping any single byte must yield an error (CRC or framing),
	// never a silently different record and never a panic.
	for i := range frame {
		mutated := append([]byte(nil), frame...)
		mutated[i] ^= 0x40
		rec, _, err := DecodeRecord(mutated)
		if err == nil && reflect.DeepEqual(rec, testRecord(7, OpLearn, "a", 2, 3)) {
			t.Fatalf("byte %d flip decoded to the original record", i)
		}
		if err == nil {
			t.Fatalf("byte %d flip decoded without error", i)
		}
	}
	// Truncation at every boundary is an error, not a partial record.
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeRecord(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, err := OpenWAL(path, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		testRecord(1, OpLearn, "fist", 1, 4),
		testRecord(2, OpCorrect, "rest", 1, 4),
		testRecord(3, OpLearn, "point", 1, 4),
	}
	for _, rec := range want {
		if err := w.Append(rec.Op, rec.Label, rec.Window); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 3 || w.NextSeq() != 4 {
		t.Fatalf("records %d nextSeq %d, want 3 and 4", w.Records(), w.NextSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestWALReplayTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, err := OpenWAL(path, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.Append(OpLearn, "g", testRecord(i, OpLearn, "g", 1, 4).Window); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(data) / 3
	// Tear the last frame mid-payload, as a crash mid-append would.
	torn := int64(2*frameLen + frameLen/2)
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}
	recs, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("torn replay returned %d records (%+v), want the 2-record prefix", len(recs), recs)
	}
	// The torn tail is gone on disk: the next append splices after
	// valid frames, and a second replay sees a clean log.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(2*frameLen) {
		t.Fatalf("torn tail not truncated: %d bytes on disk, want %d", st.Size(), 2*frameLen)
	}
}

func TestWALResetKeepsSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, err := OpenWAL(path, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	win := testRecord(0, OpLearn, "g", 1, 4).Window
	for i := 0; i < 3; i++ {
		if err := w.Append(OpLearn, "g", win); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("records %d after reset", w.Records())
	}
	// Sequence numbering continues across the truncate — that is what
	// lets replay skip records a snapshot already folded in.
	if w.NextSeq() != 4 {
		t.Fatalf("nextSeq %d after reset, want 4", w.NextSeq())
	}
	if err := w.Append(OpCorrect, "h", win); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, err := ReplayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 4 || recs[0].Op != OpCorrect {
		t.Fatalf("post-reset replay %+v, want one seq-4 correct record", recs)
	}
}

func TestReplayWALMissingFileIsEmpty(t *testing.T) {
	recs, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil || recs != nil {
		t.Fatalf("missing wal: recs %v err %v, want nil/nil", recs, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	names := []string{"zeta", "alpha", "m.v2", "M-3_x"}
	data, err := EncodeManifest(names)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"M-3_x", "alpha", "m.v2", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("manifest round trip %v, want sorted %v", got, want)
	}
	// Canonical: re-encoding the decode reproduces the bytes.
	again, err := EncodeManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("manifest re-encode is not byte-identical")
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	data, err := EncodeManifest([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x10
		if _, err := DecodeManifest(mutated); err == nil {
			t.Fatalf("byte %d flip decoded", i)
		}
	}
	if _, err := DecodeManifest(data[:len(data)-3]); err == nil {
		t.Fatal("truncated manifest decoded")
	}
}

func TestValidateModelName(t *testing.T) {
	for _, ok := range []string{"a", "model", "emg.v2", "M-3_x", "0day"} {
		if err := ValidateModelName(ok); err != nil {
			t.Errorf("ValidateModelName(%q) = %v, want nil", ok, err)
		}
	}
	long := string(bytes.Repeat([]byte{'a'}, 65))
	for _, bad := range []string{"", ".hidden", "-x", "a/b", "a b", "a\x00b", long, "../escape"} {
		if err := ValidateModelName(bad); err == nil {
			t.Errorf("ValidateModelName(%q) accepted", bad)
		}
	}
}
