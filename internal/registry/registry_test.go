package registry

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pulphd/internal/hdc"
	"pulphd/internal/model"
)

// testConfig is a small model geometry that keeps these tests fast.
func testConfig(backend hdc.Backend) hdc.Config {
	cfg := hdc.EMGConfig()
	cfg.D = 640
	cfg.Backend = backend
	return cfg
}

// randomWindow draws one full-shape window with channel levels inside
// the CIM range.
func randomWindow(cfg hdc.Config, rng *rand.Rand) [][]float64 {
	w := make([][]float64, cfg.Window)
	span := cfg.MaxLevel - cfg.MinLevel
	for t := range w {
		row := make([]float64, cfg.Channels)
		for c := range row {
			row[c] = cfg.MinLevel + rng.Float64()*span
		}
		w[t] = row
	}
	return w
}

// servingBytes serializes sv's complete learner state; two models with
// equal bytes are the same model, accumulators and all.
func servingBytes(t *testing.T, sv *hdc.Serving) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := model.SaveServing(&buf, sv, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRegistryCreateLookupDelete(t *testing.T) {
	r, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cfg := testConfig(hdc.BackendStored)
	if _, err := r.Create("emg", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("emg", cfg); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if _, err := r.Create("../escape", cfg); err == nil {
		t.Fatal("path-escaping name accepted")
	}
	if _, err := r.Serving("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent lookup: %v, want ErrNotFound", err)
	}
	sv, err := r.Serving("emg")
	if err != nil {
		t.Fatal(err)
	}
	if sv.Classes() != 0 {
		t.Fatalf("fresh model has %d classes", sv.Classes())
	}
	// On-disk layout: manifest + snapshot + wal.
	for _, f := range []string{"MANIFEST", "emg.snap", "emg.wal"} {
		if _, err := os.Stat(filepath.Join(r.Dir(), f)); err != nil {
			t.Fatalf("missing %s after create: %v", f, err)
		}
	}
	if err := r.Delete("emg"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("emg"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	for _, f := range []string{"emg.snap", "emg.wal"} {
		if _, err := os.Stat(filepath.Join(r.Dir(), f)); !os.IsNotExist(err) {
			t.Fatalf("%s survives delete", f)
		}
	}
}

func TestRegistryLearnAdvancesInfo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cfg := testConfig(hdc.BackendStored)
	if _, err := r.Create("m", cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.Learn("m", "fist", randomWindow(cfg, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Correct("m", "rest", randomWindow(cfg, rng)); err != nil {
		t.Fatal(err)
	}
	info, err := r.ModelInfo("m")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 6 || info.Classes != 2 || info.WALRecords != 6 || !info.Resident {
		t.Fatalf("info after 6 learns: %+v", info)
	}
	if err := r.Learn("m", "", randomWindow(cfg, rng)); err == nil {
		t.Fatal("empty label accepted")
	}
	if err := r.Learn("m", "x", [][]float64{{1}}); err == nil {
		t.Fatal("wrong-shape window accepted")
	}
	// Rejected learns advance nothing.
	if info2, _ := r.ModelInfo("m"); info2.Generation != 6 {
		t.Fatalf("generation moved to %d on rejected learns", info2.Generation)
	}
}

func TestRegistryListSorted(t *testing.T) {
	r, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cfg := testConfig(hdc.BackendStored)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.Create(name, cfg); err != nil {
			t.Fatal(err)
		}
	}
	infos := r.List()
	if len(infos) != 3 || infos[0].Name != "alpha" || infos[1].Name != "mid" || infos[2].Name != "zeta" {
		t.Fatalf("List() = %+v, want alpha/mid/zeta", infos)
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d", r.Len())
	}
}

func TestRegistryEphemeralHasNoDisk(t *testing.T) {
	r, err := Open(Config{ResidentBudget: 1}) // budget ignored without a dir
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Persistent() {
		t.Fatal("ephemeral registry claims persistence")
	}
	cfg := testConfig(hdc.BackendStored)
	sv, err := r.Create("m", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		if err := r.Learn("m", "g", randomWindow(cfg, rng)); err != nil {
			t.Fatal(err)
		}
	}
	// No eviction without a snapshot to fall back on: the model must
	// stay resident despite the 1-byte budget.
	if got, err := r.Serving("m"); err != nil || got != sv {
		t.Fatalf("ephemeral model evicted or replaced: %v %v", got, err)
	}
}

func TestRegistryEvictionAndFaultIn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig(hdc.BackendStored)
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir, Shards: 2, ResidentBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Create("hot", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("cold", cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Learn("cold", "a", randomWindow(cfg, rng)); err != nil {
			t.Fatal(err)
		}
		if err := r.Learn("hot", "b", randomWindow(cfg, rng)); err != nil {
			t.Fatal(err)
		}
	}
	coldBefore := servingBytes(t, mustServing(t, r, "cold"))
	// Touch hot last, then enforce: with a 1-byte budget every entry
	// but the most recent loser is evicted; the LRU victim is cold.
	if _, err := r.Serving("hot"); err != nil {
		t.Fatal(err)
	}
	r.EnforceBudget()
	if info, _ := r.ModelInfo("cold"); info.Resident {
		t.Fatal("cold model still resident after EnforceBudget")
	}
	// Fault-in restores the exact model: snapshot plus replayed WAL.
	coldAfter := servingBytes(t, mustServing(t, r, "cold"))
	if !bytes.Equal(coldBefore, coldAfter) {
		t.Fatal("fault-in did not restore the evicted model byte-identically")
	}
}

func mustServing(t *testing.T, r *Registry, name string) *hdc.Serving {
	t.Helper()
	sv, err := r.Serving(name)
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

func TestRegistryClosedRejectsEverything(t *testing.T) {
	r, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("m", testConfig(hdc.BackendStored)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.Serving("m"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serving after Close: %v, want ErrClosed", err)
	}
	if _, err := r.Create("n", testConfig(hdc.BackendStored)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create after Close: %v, want ErrClosed", err)
	}
}

func TestRegistrySnapshotTruncatesWAL(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig(hdc.BackendStored)
	r, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Create("m", cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := r.Learn("m", "g", randomWindow(cfg, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if info, _ := r.ModelInfo("m"); info.WALRecords != 4 {
		t.Fatalf("wal records %d, want 4", info.WALRecords)
	}
	if err := r.Snapshot("m"); err != nil {
		t.Fatal(err)
	}
	info, _ := r.ModelInfo("m")
	if info.WALRecords != 0 || info.Generation != 4 {
		t.Fatalf("after snapshot: %+v", info)
	}
	if st, err := os.Stat(filepath.Join(r.Dir(), "m.wal")); err != nil || st.Size() != 0 {
		t.Fatalf("wal not truncated after snapshot: %v %v", st, err)
	}
}

func TestRegistryAutoSnapshotCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig(hdc.BackendStored)
	r, err := Open(Config{Dir: t.TempDir(), SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Create("m", cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := r.Learn("m", "g", randomWindow(cfg, rng)); err != nil {
			t.Fatal(err)
		}
	}
	// 7 learns at cadence 3: snapshots after learns 3 and 6, one record
	// left in the log.
	info, _ := r.ModelInfo("m")
	if info.WALRecords != 1 || info.Generation != 7 {
		t.Fatalf("after 7 learns at cadence 3: %+v", info)
	}
}
