package registry

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// The manifest is the registry's root: the authoritative list of
// registered model names, written atomically (temp file + rename) on
// every create/delete. Per-model state lives next to it as
// <name>.snap (a PULPHD03 serving snapshot, internal/model) and
// <name>.wal (the write-ahead log) — the manifest extends that family
// with the same framing discipline: magic, version, CRC-32 trailer.
//
// Layout (little-endian):
//
//	8-byte magic "PULPHDRM" | u32 version (1) | u32 count |
//	count × (u16 name length | name bytes) | u32 CRC-32 (IEEE)
//
// The CRC covers everything after the magic.

// manifestMagic identifies a registry manifest.
var manifestMagic = [8]byte{'P', 'U', 'L', 'P', 'H', 'D', 'R', 'M'}

// manifestVersion is the current format version.
const manifestVersion = 1

// maxManifestModels bounds how many names a manifest may declare —
// generous (the resident budget, not the manifest, is the real
// capacity limit) but enough to stop a hostile count field from
// asking for gigabytes.
const maxManifestModels = 1 << 20

// modelNameRE is the shape of a valid model name: it doubles as the
// file-name-safety check (names become <name>.snap/<name>.wal), so no
// separators, no leading dot, 64 bytes max.
var modelNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateModelName reports whether name may register: non-empty,
// leading alphanumeric, then alphanumerics, dots, underscores or
// dashes, at most 64 bytes. The shape keeps names safe as path
// components and HTTP path segments.
func ValidateModelName(name string) error {
	if !modelNameRE.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q (want ^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$)", name)
	}
	return nil
}

// EncodeManifest renders the name list in manifest format. Names are
// written sorted, so equal registries produce byte-identical
// manifests.
func EncodeManifest(names []string) ([]byte, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	buf := append([]byte(nil), manifestMagic[:]...)
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[0:], manifestVersion)
	binary.LittleEndian.PutUint32(scratch[4:], uint32(len(sorted)))
	buf = append(buf, scratch[:8]...)
	for _, name := range sorted {
		if err := ValidateModelName(name); err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint16(scratch[0:], uint16(len(name)))
		buf = append(buf, scratch[:2]...)
		buf = append(buf, name...)
	}
	binary.LittleEndian.PutUint32(scratch[0:], crc32.ChecksumIEEE(buf[len(manifestMagic):]))
	return append(buf, scratch[:4]...), nil
}

// DecodeManifest parses manifest bytes, validating framing, version,
// CRC, and every name. Corrupt input is an error, never a panic, and
// a manifest that decodes re-encodes byte-identically (names are
// stored sorted).
func DecodeManifest(data []byte) ([]string, error) {
	if len(data) < len(manifestMagic)+8+4 {
		return nil, fmt.Errorf("registry: manifest short: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != manifestMagic {
		return nil, fmt.Errorf("registry: bad manifest magic %q", data[:8])
	}
	body, trailer := data[8:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("registry: manifest CRC mismatch")
	}
	if v := binary.LittleEndian.Uint32(body[0:]); v != manifestVersion {
		return nil, fmt.Errorf("registry: manifest version %d unsupported", v)
	}
	count := int(binary.LittleEndian.Uint32(body[4:]))
	if count < 0 || count > maxManifestModels {
		return nil, fmt.Errorf("registry: manifest declares %d models", count)
	}
	names := make([]string, 0, min(count, 1024))
	off := 8
	prev := ""
	for i := 0; i < count; i++ {
		if len(body) < off+2 {
			return nil, fmt.Errorf("registry: manifest truncated at entry %d", i)
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body) < off+n {
			return nil, fmt.Errorf("registry: manifest truncated in entry %d", i)
		}
		name := string(body[off : off+n])
		off += n
		if err := ValidateModelName(name); err != nil {
			return nil, err
		}
		if i > 0 && name <= prev {
			return nil, fmt.Errorf("registry: manifest names not strictly sorted at %q", name)
		}
		prev = name
		names = append(names, name)
	}
	if off != len(body) {
		return nil, fmt.Errorf("registry: manifest has %d trailing bytes", len(body)-off)
	}
	return names, nil
}

// manifestPath is the manifest file inside a registry directory.
func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

// writeManifest atomically replaces the manifest in dir.
func writeManifest(dir string, names []string) error {
	data, err := EncodeManifest(names)
	if err != nil {
		return err
	}
	tmp := manifestPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("registry: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		return fmt.Errorf("registry: publishing manifest: %w", err)
	}
	return nil
}

// readManifest loads the manifest in dir; a missing file is an empty
// registry.
func readManifest(dir string) ([]string, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: reading manifest: %w", err)
	}
	return DecodeManifest(data)
}
