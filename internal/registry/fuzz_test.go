package registry

import (
	"bytes"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the WAL frame decoder: it
// must never panic, and any frame it accepts must re-encode to exactly
// the bytes it consumed — the encoding is canonical, so decode∘encode
// is the identity on valid frames. That property is what makes
// replay-after-crash trustworthy: there is exactly one byte string for
// every record, and corrupt bytes cannot alias to a different record
// without failing the CRC.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, testRecord(1, OpLearn, "fist", 1, 4)))
	f.Add(AppendRecord(nil, testRecord(1<<33, OpCorrect, "rest", 3, 2)))
	two := AppendRecord(AppendRecord(nil, testRecord(5, OpLearn, "a", 1, 1)), testRecord(6, OpCorrect, "b", 2, 2))
	f.Add(two)
	f.Add(two[:len(two)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < frameHeaderLen || n > len(data) {
			t.Fatalf("decoded frame size %d outside [8,%d]", n, len(data))
		}
		again := AppendRecord(nil, rec)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data[:n], again)
		}
		// DecodeAll over the same bytes must agree with the frame-at-a-
		// time decode and never read past the end.
		recs, valid, _ := DecodeAll(data)
		if len(recs) == 0 || valid < n {
			t.Fatalf("DecodeAll saw %d records over %d bytes; DecodeRecord saw one over %d", len(recs), valid, n)
		}
	})
}

// FuzzRegistryManifest fuzzes the manifest decoder: no panics, and any
// manifest that decodes re-encodes byte-identically (names are stored
// sorted, so the encoding is canonical).
func FuzzRegistryManifest(f *testing.F) {
	f.Add([]byte{})
	for _, names := range [][]string{nil, {"a"}, {"alpha", "beta", "g-3_x.v2"}} {
		data, err := EncodeManifest(names)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		names, err := DecodeManifest(data)
		if err != nil {
			return
		}
		for _, name := range names {
			if err := ValidateModelName(name); err != nil {
				t.Fatalf("decoded invalid name %q: %v", name, err)
			}
		}
		again, err := EncodeManifest(names)
		if err != nil {
			t.Fatalf("re-encoding decoded manifest: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("manifest decode/encode not canonical:\n in  %x\n out %x", data, again)
		}
	})
}
