package registry

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"

	"pulphd/internal/obs"
)

// This file is the write-ahead log of the model registry. Every online
// Learn/Correct against a persistent model is framed, checksummed and
// appended here BEFORE it is applied, so a restart replays the WAL
// tail onto the latest snapshot and warm-starts instead of retraining
// — the durability half of the paper's "the AM matrix can be
// continuously updated for on-line learning" (§3) once one process
// serves many long-lived tenant models.
//
// Frame layout (little-endian):
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Payload:
//
//	u64 seq | u8 op | u16 label length | label bytes |
//	u32 rows | u32 cols | rows×cols f64 window values
//
// Recovery reads the longest valid prefix: a short frame, an
// implausible length, or a CRC mismatch ends replay at the last good
// record — a torn tail from a mid-append crash loses at most the
// records the process never acknowledged, and corrupt bytes can stop
// replay but never panic it or smuggle a half-record into the model.

// Op is the kind of one WAL record.
type Op uint8

// The record kinds. Correct is a Learn that arrived as an online
// correction (predict-then-learn feedback); both replay identically —
// the distinction feeds the drift monitors, which are process-local
// and not replayed.
const (
	OpLearn Op = iota + 1
	OpCorrect
)

// String returns the op's wire name.
func (o Op) String() string {
	switch o {
	case OpLearn:
		return "learn"
	case OpCorrect:
		return "correct"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Record is one durable online-learning event.
type Record struct {
	Seq    uint64
	Op     Op
	Label  string
	Window [][]float64
}

// Limits guarding the decoder against hostile or corrupt frames. The
// payload bound implies every other field fits; the row/col bounds
// mirror internal/model's geometry limits.
const (
	maxWALLabelLen = 256
	maxWALRows     = 1 << 16
	maxWALCols     = 1 << 12
	maxWALPayload  = 1 << 26 // 64 MiB: > maxWALRows·maxWALCols is impossible anyway per-frame
)

// frameHeaderLen is the fixed byte cost of one frame before its
// payload: length + CRC.
const frameHeaderLen = 8

// AppendRecord appends the framed encoding of rec to buf and returns
// the extended slice. It never fails: the encoder owns the format, so
// any Record whose label and window respect the package limits frames
// losslessly (EncodeRecord's caller validates those limits — the
// registry does before logging).
func AppendRecord(buf []byte, rec Record) []byte {
	payloadLen := 8 + 1 + 2 + len(rec.Label) + 4 + 4
	for _, row := range rec.Window {
		payloadLen += 8 * len(row)
	}
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+payloadLen)...)
	p := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint64(p[0:], rec.Seq)
	p[8] = byte(rec.Op)
	binary.LittleEndian.PutUint16(p[9:], uint16(len(rec.Label)))
	off := 11 + copy(p[11:], rec.Label)
	rows := len(rec.Window)
	cols := 0
	if rows > 0 {
		cols = len(rec.Window[0])
	}
	binary.LittleEndian.PutUint32(p[off:], uint32(rows))
	binary.LittleEndian.PutUint32(p[off+4:], uint32(cols))
	off += 8
	for _, row := range rec.Window {
		for _, v := range row {
			binary.LittleEndian.PutUint64(p[off:], math.Float64bits(v))
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(p[:payloadLen]))
	return buf
}

// DecodeRecord decodes one frame from the front of data, returning the
// record and the total frame size consumed. Any defect — short data,
// implausible lengths, a CRC mismatch, a ragged window — is an error;
// the decoder never panics and never reads past the frame it sized.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < frameHeaderLen {
		return Record{}, 0, fmt.Errorf("registry: wal frame header short: %d bytes", len(data))
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:]))
	wantCRC := binary.LittleEndian.Uint32(data[4:])
	if payloadLen < 19 || payloadLen > maxWALPayload {
		return Record{}, 0, fmt.Errorf("registry: wal payload length %d implausible", payloadLen)
	}
	if len(data) < frameHeaderLen+payloadLen {
		return Record{}, 0, fmt.Errorf("registry: wal frame torn: have %d of %d payload bytes", len(data)-frameHeaderLen, payloadLen)
	}
	p := data[frameHeaderLen : frameHeaderLen+payloadLen]
	if crc32.ChecksumIEEE(p) != wantCRC {
		return Record{}, 0, fmt.Errorf("registry: wal frame CRC mismatch")
	}
	rec := Record{Seq: binary.LittleEndian.Uint64(p[0:]), Op: Op(p[8])}
	if rec.Op != OpLearn && rec.Op != OpCorrect {
		return Record{}, 0, fmt.Errorf("registry: wal record op %d unknown", p[8])
	}
	labelLen := int(binary.LittleEndian.Uint16(p[9:]))
	if labelLen == 0 || labelLen > maxWALLabelLen {
		return Record{}, 0, fmt.Errorf("registry: wal label length %d out of range", labelLen)
	}
	if len(p) < 11+labelLen+8 {
		return Record{}, 0, fmt.Errorf("registry: wal payload short for label")
	}
	rec.Label = string(p[11 : 11+labelLen])
	off := 11 + labelLen
	rows := int(binary.LittleEndian.Uint32(p[off:]))
	cols := int(binary.LittleEndian.Uint32(p[off+4:]))
	off += 8
	if rows < 1 || rows > maxWALRows || cols < 1 || cols > maxWALCols {
		return Record{}, 0, fmt.Errorf("registry: wal window %d×%d out of range", rows, cols)
	}
	if payloadLen != off+8*rows*cols {
		return Record{}, 0, fmt.Errorf("registry: wal payload %d bytes, want %d for %d×%d window", payloadLen, off+8*rows*cols, rows, cols)
	}
	rec.Window = make([][]float64, rows)
	vals := make([]float64, rows*cols)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off+8*i:]))
	}
	for r := range rec.Window {
		rec.Window[r] = vals[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return rec, frameHeaderLen + payloadLen, nil
}

// DecodeAll decodes the longest valid prefix of data, returning the
// records, how many bytes of valid frames they spanned, and the defect
// that ended the scan (nil when data was consumed exactly). This is
// the in-memory half of recovery; WAL.Replay wraps it with file I/O.
func DecodeAll(data []byte) (recs []Record, valid int, defect error) {
	for valid < len(data) {
		rec, n, err := DecodeRecord(data[valid:])
		if err != nil {
			return recs, valid, err
		}
		recs = append(recs, rec)
		valid += n
	}
	return recs, valid, nil
}

// WAL is one model's append-only log. Append is not concurrency-safe;
// the registry serializes it under the entry's learner lock.
type WAL struct {
	f    *os.File
	path string
	// seq numbers the next record; records carry strictly increasing
	// sequence numbers so replay can cross-check its position.
	seq uint64
	// records counts frames appended since open/truncate — the
	// snapshot-cadence input.
	records int
	// sync forces an fsync per append: full single-record durability
	// against power loss, at a large per-learn latency cost. Off, an
	// OS crash can lose the page-cache tail; a process kill -9 cannot.
	sync bool
	buf  []byte
}

// OpenWAL opens (creating if missing) the log at path for appending.
// The caller supplies the sequence number the next record should carry
// (recovery: last replayed seq + 1; fresh model: 1) and how many
// records the existing file already holds.
func OpenWAL(path string, nextSeq uint64, records int, sync bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: opening wal: %w", err)
	}
	return &WAL{f: f, path: path, seq: nextSeq, records: records, sync: sync}, nil
}

// Append frames one record (assigning it the next sequence number) and
// writes it to the log, fsyncing when the WAL is in sync mode. The
// record is durable in the OS when Append returns — a kill -9 after
// Append replays it, so the caller must Append before applying the
// learn it acknowledges.
func (w *WAL) Append(op Op, label string, window [][]float64) error {
	_, err := w.AppendCtx(context.Background(), op, label, window)
	return err
}

// AppendCtx is Append with a request context: a wal.append span wraps
// the frame-and-write, a nested wal.fsync span times the fsync in sync
// mode, and the fsync duration comes back (0 when sync is off) so the
// registry can feed its latency histogram.
func (w *WAL) AppendCtx(ctx context.Context, op Op, label string, window [][]float64) (time.Duration, error) {
	rec := Record{Seq: w.seq, Op: op, Label: label, Window: window}
	sp := obs.SpansFrom(ctx)
	ap := sp.Start("wal.append", sp.Parent())
	sp.Annotate(ap, "seq", int64(w.seq))
	w.buf = AppendRecord(w.buf[:0], rec)
	sp.Annotate(ap, "bytes", int64(len(w.buf)))
	if _, err := w.f.Write(w.buf); err != nil {
		sp.End(ap)
		return 0, fmt.Errorf("registry: appending wal record: %w", err)
	}
	var fsync time.Duration
	if w.sync {
		fs := sp.Start("wal.fsync", ap)
		start := time.Now()
		err := w.f.Sync()
		fsync = time.Since(start)
		sp.End(fs)
		if err != nil {
			sp.End(ap)
			return fsync, fmt.Errorf("registry: syncing wal: %w", err)
		}
	}
	sp.End(ap)
	w.seq++
	w.records++
	return fsync, nil
}

// Records returns how many records the log currently holds.
func (w *WAL) Records() int { return w.records }

// NextSeq returns the sequence number the next Append will assign.
func (w *WAL) NextSeq() uint64 { return w.seq }

// Reset truncates the log to empty — called right after a snapshot
// lands, so the (snapshot, WAL tail) pair stays minimal. The sequence
// numbering continues; only the file restarts.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("registry: truncating wal: %w", err)
	}
	// O_APPEND writes land at the (now zero) end regardless of the file
	// offset, so no Seek is needed.
	w.records = 0
	return nil
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// ReplayWAL reads the log at path and returns the longest valid record
// prefix. A missing file is an empty log. When the file carries a torn
// or corrupt tail, the tail is truncated away on disk (so the next
// append never splices new frames after garbage) and the valid prefix
// is returned — recovery proceeds with every acknowledged record that
// survived, which is exactly the crash-consistency contract.
func ReplayWAL(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: reading wal: %w", err)
	}
	recs, valid, defect := DecodeAll(data)
	if defect != nil && valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("registry: truncating torn wal tail: %w", err)
		}
	}
	return recs, nil
}
