package fault

import (
	"math"
	"math/rand"
	"testing"

	"pulphd/internal/hv"
)

// TestBERZeroIsIdentity pins the BER=0 contract for every corruption
// entry point: no bit changes, bit for bit.
func TestBERZeroIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Model{BER: 0, Seed: 99}

	v := hv.NewRandom(1000, rng)
	ref := v.Clone()
	if flips := m.CorruptVector(SiteOf(PointAM, 3), v); flips != 0 {
		t.Fatalf("BER=0 CorruptVector flipped %d bits", flips)
	}
	if !hv.Equal(v, ref) {
		t.Fatal("BER=0 CorruptVector changed the vector")
	}

	words := make([]uint32, 32)
	for i := range words {
		words[i] = rng.Uint32()
	}
	refW := append([]uint32(nil), words...)
	if flips := m.CorruptWords(SiteOf(PointDMA, 0), words, len(words)*32); flips != 0 {
		t.Fatalf("BER=0 CorruptWords flipped %d bits", flips)
	}
	for i := range words {
		if words[i] != refW[i] {
			t.Fatalf("BER=0 CorruptWords changed word %d", i)
		}
	}

	xs := []float64{1.5, -2.25, math.Pi, 0}
	refX := append([]float64(nil), xs...)
	if flips := m.CorruptFloats(SiteOf(PointSVM, 0), xs); flips != 0 {
		t.Fatalf("BER=0 CorruptFloats flipped %d bits", flips)
	}
	for i := range xs {
		if xs[i] != refX[i] {
			t.Fatalf("BER=0 CorruptFloats changed element %d", i)
		}
	}
}

// TestSeededDeterminism pins that the flip pattern is a pure function
// of (seed, site, bit): repeated runs and arbitrary split/merge of the
// same buffer produce identical corruption.
func TestSeededDeterminism(t *testing.T) {
	const d = 2777 // odd tail on purpose
	m := Model{BER: 0.02, Seed: 12345}
	rng := rand.New(rand.NewSource(2))
	base := hv.NewRandom(d, rng)

	a := base.Clone()
	b := base.Clone()
	fa := m.CorruptVector(SiteOf(PointIM, 7), a)
	fb := m.CorruptVector(SiteOf(PointIM, 7), b)
	if fa != fb || !hv.Equal(a, b) {
		t.Fatalf("same seed+site disagreed: %d vs %d flips", fa, fb)
	}
	if fa == 0 {
		t.Fatal("BER=2% over 2777 bits flipped nothing — implausible")
	}

	// A different seed or a different site must draw an independent
	// pattern (with overwhelming probability, a different one).
	c := base.Clone()
	Model{BER: 0.02, Seed: 54321}.CorruptVector(SiteOf(PointIM, 7), c)
	if hv.Equal(a, c) {
		t.Fatal("different seeds produced the same flips")
	}
	e := base.Clone()
	m.CorruptVector(SiteOf(PointIM, 8), e)
	if hv.Equal(a, e) {
		t.Fatal("different sites produced the same flips")
	}
}

// TestWorkerCountIndependence simulates different parallel splits of
// one DMA buffer: corrupting the whole buffer at once and corrupting
// word sub-ranges concurrently must yield the same bits, because each
// flip depends only on its global bit index.
func TestWorkerCountIndependence(t *testing.T) {
	const words = 64
	m := Model{BER: 0.05, Seed: 7}
	rng := rand.New(rand.NewSource(3))
	base := make([]uint32, words)
	for i := range base {
		base[i] = rng.Uint32()
	}

	whole := append([]uint32(nil), base...)
	m.CorruptWords(SiteOf(PointDMA, 1), whole, words*32)

	for _, workers := range []int{1, 2, 3, 8} {
		split := append([]uint32(nil), base...)
		done := make(chan struct{}, workers)
		chunk := (words + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > words {
				hi = words
			}
			go func(lo, hi int) {
				// Each worker corrupts only its word range; masks are
				// computed from global bit indices, so the union is
				// exactly the whole-buffer pattern.
				for i := lo; i < hi; i++ {
					sub := split[i : i+1]
					if mask := m.Mask32(SiteOf(PointDMA, 1), i, words*32); mask != 0 {
						sub[0] ^= mask
					}
				}
				done <- struct{}{}
			}(lo, hi)
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		for i := range split {
			if split[i] != whole[i] {
				t.Fatalf("workers=%d: word %d differs from serial corruption", workers, i)
			}
		}
	}
}

// TestFlipRate sanity-checks the channel statistics: the observed flip
// fraction concentrates near the configured BER.
func TestFlipRate(t *testing.T) {
	const d = 200_000
	for _, ber := range []float64{0.001, 0.01, 0.1, 0.5} {
		m := Model{BER: ber, Seed: 11}
		v := hv.New(d)
		flips := m.CorruptVector(SiteOf(PointAM, 0), v)
		got := float64(flips) / d
		// 6-sigma band for a binomial(d, ber).
		sigma := math.Sqrt(ber * (1 - ber) / d)
		if math.Abs(got-ber) > 6*sigma+1e-9 {
			t.Errorf("BER %g: observed flip rate %g", ber, got)
		}
		if flips != v.CountOnes() {
			t.Errorf("BER %g: reported %d flips but %d bits set", ber, flips, v.CountOnes())
		}
	}
}

// TestTailInvariant pins that corruption never sets bits above the
// dimension in the final packed word.
func TestTailInvariant(t *testing.T) {
	m := Model{BER: 1, Seed: 0} // flip everything
	v := hv.New(70)             // 3 words, 6 valid tail bits
	m.CorruptVector(SiteOf(PointCIM, 0), v)
	if v.CountOnes() != 70 {
		t.Fatalf("BER=1 set %d of 70 bits", v.CountOnes())
	}
	if _, err := hv.FromWords(70, v.Words()); err != nil {
		t.Fatalf("tail invariant broken: %v", err)
	}

	words := []uint32{0, 0, 0}
	m.CorruptWords(SiteOf(PointDMA, 2), words, 70)
	if words[2]&^((1<<6)-1) != 0 {
		t.Fatalf("CorruptWords set bits above validBits: %08x", words[2])
	}
}

// TestValidate covers the range check.
func TestValidate(t *testing.T) {
	if err := (Model{BER: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{BER: -0.1}).Validate(); err == nil {
		t.Fatal("negative BER accepted")
	}
	if err := (Model{BER: 1.5}).Validate(); err == nil {
		t.Fatal("BER > 1 accepted")
	}
}

// countingSink is a test MetricsSink.
type countingSink struct {
	calls, bits int
}

func (s *countingSink) RecordInjection(flips int) {
	s.calls++
	s.bits += flips
}

// TestMetrics checks the sink wiring counts injections and bits.
func TestMetrics(t *testing.T) {
	sink := &countingSink{}
	SetMetrics(sink)
	defer SetMetrics(nil)
	m := Model{BER: 1, Seed: 1}
	v := hv.New(64)
	m.CorruptVector(SiteOf(PointAM, 0), v)
	if sink.calls != 1 || sink.bits != 64 {
		t.Fatalf("metrics: %d injections, %d bits", sink.calls, sink.bits)
	}
	// BER=0 must not count.
	Model{}.CorruptVector(SiteOf(PointAM, 0), v)
	if sink.calls != 1 {
		t.Fatal("BER=0 counted an injection")
	}
}
