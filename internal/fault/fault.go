// Package fault implements deterministic, seed-driven bit-error
// injection for the robustness experiments of the paper's §4.1 ("HD
// computing exhibits graceful degradation with ... faulty components")
// and the in-memory HDC line that builds on it: binary hypervector
// classifiers keep their accuracy under substantial bit-error rates
// (BER), which is what makes low-voltage SRAM and analog item/
// associative memories viable.
//
// The model is an independent bit-flip channel: every stored or
// transferred binary component flips with probability BER. Whether a
// particular bit flips is a pure function of (Seed, Site, bit index) —
// a counter-based hash, not a sequential RNG stream — so injection is
//
//   - reproducible: the same seed produces the same flips run after
//     run, and
//   - order-independent: the flips do not depend on how the caller
//     iterates, batches, or parallelizes the corruption, so results
//     are identical across worker counts.
//
// A BER of zero is an exact identity: no hash is evaluated, no bit is
// touched, and corrupted outputs are bit-identical to the uninjected
// pipeline (pinned by the BER=0 equivalence tests).
//
// Injection points (see DESIGN.md §11): the IM and CIM item memories
// and the AM class prototypes in internal/hdc, the simulated L2→L1
// DMA transfers in internal/pulp (low-voltage TCDM errors), and the
// float parameter memory of the SVM baseline in internal/svm.
package fault

import (
	"fmt"
	"math"
	"sync/atomic"

	"pulphd/internal/hv"
)

// Point names one architectural injection point. It is the high byte
// of a Site, so flips at different points are independent even for
// equal element indices.
type Point uint8

// The architectural injection points of the reproduction.
const (
	// PointIM is the item memory: one site per channel seed vector.
	PointIM Point = iota + 1
	// PointCIM is the continuous item memory: one site per level.
	PointCIM
	// PointAM is the associative memory: one site per class prototype.
	PointAM
	// PointDMA is a simulated L2→L1 DMA transfer: one site per
	// transferred buffer (modeling low-voltage TCDM write errors).
	PointDMA
	// PointSVM is the SVM baseline's parameter memory: one site per
	// stored float array.
	PointSVM
)

// String returns the point's short name.
func (p Point) String() string {
	switch p {
	case PointIM:
		return "IM"
	case PointCIM:
		return "CIM"
	case PointAM:
		return "AM"
	case PointDMA:
		return "DMA"
	case PointSVM:
		return "SVM"
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Site identifies one corruptible object — a hypervector, a DMA
// buffer, a parameter array — so that each has an independent flip
// pattern under the same model.
type Site uint64

// SiteOf builds the site id for element index at injection point p
// (e.g. class index for PointAM, level index for PointCIM).
func SiteOf(p Point, index int) Site {
	return Site(uint64(p)<<56 | uint64(uint32(index)))
}

// Model is one bit-error channel: independent flips at rate BER,
// deterministic given Seed and the site. The zero value (BER 0)
// injects nothing and is always safe to apply.
type Model struct {
	// BER is the bit-error rate: the probability, in [0, 1], that any
	// individual stored or transferred bit flips.
	BER float64
	// Seed selects the flip pattern. Two models with different seeds
	// draw independent patterns at the same BER.
	Seed int64
}

// Enabled reports whether the model injects any faults at all.
func (m Model) Enabled() bool { return m.BER > 0 }

// Validate checks that BER is a probability.
func (m Model) Validate() error {
	if m.BER < 0 || m.BER > 1 {
		return fmt.Errorf("fault: BER %g outside [0,1]", m.BER)
	}
	return nil
}

// uniform returns a deterministic uniform in [0,1) for (seed, site,
// counter) with 53 bits of precision. The hash is hv.Splitmix64 — the
// same counter-based mix the rematerializing item-memory backend
// expands its rows with, which is why the two compose: both are pure
// functions of (seed, site, counter) with no sequential state.
func uniform(seed uint64, site Site, counter uint64) float64 {
	h := hv.Splitmix64((seed ^ hv.Splitmix64(uint64(site))) + 0x9e3779b97f4a7c15*counter)
	return float64(h>>11) * (1.0 / (1 << 53))
}

// Flips reports whether bit index `bit` of the object at site flips
// under the model. It is the primitive every corruption routine is
// built from: a pure function, so any iteration order or parallel
// split produces the same flip set.
func (m Model) Flips(site Site, bit int) bool {
	if m.BER <= 0 {
		return false
	}
	if m.BER >= 1 {
		return true
	}
	return uniform(uint64(m.Seed), site, uint64(bit)) < m.BER
}

// Mask32 returns the 32-bit flip mask for packed word w of site,
// restricted to the first validBits components of the vector: bit b of
// the result is set exactly when Flips(site, 32w+b) and 32w+b <
// validBits. XORing this mask into a word applies the channel, which
// is how rematerialized (generated-on-the-fly) hypervectors compose
// fault injection without ever storing the corrupted vector.
func (m Model) Mask32(site Site, w, validBits int) uint32 {
	var mask uint32
	base := w * 32
	n := validBits - base
	if n > 32 {
		n = 32
	}
	for b := 0; b < n; b++ {
		if m.Flips(site, base+b) {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// Mask64 returns the flip mask for 64-bit block j of site (packed
// words 2j and 2j+1, low word in the low half) restricted to validBits
// components — the block form the rematerializing encode inner loop
// consumes.
func (m Model) Mask64(site Site, j, validBits int) uint64 {
	return uint64(m.Mask32(site, 2*j, validBits)) |
		uint64(m.Mask32(site, 2*j+1, validBits))<<32
}

// CountFlips returns the number of bits the channel flips across the
// first validBits components of site, and records the injection in the
// installed metrics sink. It is the bookkeeping half of corrupting a
// rematerialized vector family: the flips themselves happen lazily at
// generation time (Mask32/Mask64), but the count and the metrics must
// match what corrupting a stored copy would have reported.
func (m Model) CountFlips(site Site, validBits int) (flips int) {
	if !m.Enabled() || validBits <= 0 {
		return 0
	}
	nw := (validBits + 31) / 32
	for w := 0; w < nw; w++ {
		flips += popcount32(m.Mask32(site, w, validBits))
	}
	recordInjection(flips)
	return flips
}

// CorruptWords applies the channel in place to a packed bit buffer of
// validBits components (the layout of hv.Vector and of the simulated
// DMA payloads) and returns the number of bits flipped. Bits at or
// above validBits are never touched, preserving the hv tail-masking
// invariant. BER 0 returns immediately without reading the buffer.
func (m Model) CorruptWords(site Site, words []uint32, validBits int) (flips int) {
	if !m.Enabled() || validBits <= 0 {
		return 0
	}
	if max := len(words) * 32; validBits > max {
		validBits = max
	}
	nw := (validBits + 31) / 32
	for w := 0; w < nw; w++ {
		if mask := m.Mask32(site, w, validBits); mask != 0 {
			words[w] ^= mask
			flips += popcount32(mask)
		}
	}
	recordInjection(flips)
	return flips
}

// CorruptVector applies the channel in place to a hypervector and
// returns the number of components flipped. The tail invariant is
// preserved through hv.Vector.FlipWordMask.
func (m Model) CorruptVector(site Site, v hv.Vector) (flips int) {
	if !m.Enabled() || v.IsZero() {
		return 0
	}
	d := v.Dim()
	for w := 0; w < v.NumWords(); w++ {
		if mask := m.Mask32(site, w, d); mask != 0 {
			flips += v.FlipWordMask(w, mask)
		}
	}
	recordInjection(flips)
	return flips
}

// CorruptFloats applies the channel in place to the IEEE-754 bit
// patterns of a float parameter array — the model of keeping a
// classical classifier's weights in the same faulty memory. Each
// float64 spans 64 bit positions of the site, so at a BER of p every
// parameter is hit with probability 1-(1-p)^64 — the mechanism behind
// the SVM's early collapse in the robustness study.
func (m Model) CorruptFloats(site Site, xs []float64) (flips int) {
	if !m.Enabled() || len(xs) == 0 {
		return 0
	}
	for i := range xs {
		var mask uint64
		base := i * 64
		for b := 0; b < 64; b++ {
			if m.Flips(site, base+b) {
				mask |= 1 << uint(b)
			}
		}
		if mask != 0 {
			xs[i] = flipFloatBits(xs[i], mask)
			flips += popcount64(mask)
		}
	}
	recordInjection(flips)
	return flips
}

// flipFloatBits XORs mask into the IEEE-754 representation of x.
func flipFloatBits(x float64, mask uint64) float64 {
	return math.Float64frombits(math.Float64bits(x) ^ mask)
}

func popcount32(x uint32) int { return popcount64(uint64(x)) }

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// MetricsSink receives one call per corruption pass that had
// injection enabled, with the number of bits it flipped.
// obs.FaultMetrics satisfies it; the interface (rather than a direct
// obs dependency) keeps this package a leaf — obs itself depends on
// fault transitively through pulp.
type MetricsSink interface {
	RecordInjection(flips int)
}

// metricsVal holds the package's metrics sink. The default nil
// disables recording; every corruption call pays one atomic load.
var metricsVal atomic.Value // of sinkBox

// sinkBox keeps the stored atomic.Value type consistent across
// Set calls with different concrete sink types.
type sinkBox struct{ s MetricsSink }

// SetMetrics installs (or, with nil, removes) the metrics sink
// counting injections and flipped bits across the package.
func SetMetrics(s MetricsSink) { metricsVal.Store(sinkBox{s}) }

// recordInjection folds one corruption call into the installed sink.
func recordInjection(flips int) {
	if b, ok := metricsVal.Load().(sinkBox); ok && b.s != nil {
		b.s.RecordInjection(flips)
	}
}
