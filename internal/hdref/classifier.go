package hdref

import (
	"fmt"
	"math/rand"
)

// This file extends the golden model from single operations to the
// complete classifier pipeline of §2.1.1, so the optimized packed
// implementation (internal/hdc) can be validated end to end: item
// memories, CIM level construction, spatial encoding with the even-
// channel tie-breaker, window bundling and associative search, all in
// the most obvious unpacked form.

// RefItemMemory is the unpacked item memory.
type RefItemMemory struct {
	Items []Bits
}

// NewRefItemMemory mirrors hdc.NewItemMemory: n i.i.d. random vectors
// drawn from the seed. The draw order matches the packed
// implementation only if the same RNG consumption pattern is used;
// equivalence tests therefore construct packed memories first and
// convert, rather than relying on RNG lockstep.
func NewRefItemMemory(d, n int, seed int64) *RefItemMemory {
	rng := rand.New(rand.NewSource(seed))
	m := &RefItemMemory{}
	for i := 0; i < n; i++ {
		m.Items = append(m.Items, Random(d, rng))
	}
	return m
}

// RefCIM is the unpacked continuous item memory.
type RefCIM struct {
	Min, Max float64
	Levels   []Bits
}

// Quantize mirrors hdc.ContinuousItemMemory.Quantize: round to the
// closest level, clamping at the range ends.
func (c *RefCIM) Quantize(x float64) int {
	if x <= c.Min {
		return 0
	}
	if x >= c.Max {
		return len(c.Levels) - 1
	}
	step := (c.Max - c.Min) / float64(len(c.Levels)-1)
	l := int((x-c.Min)/step + 0.5)
	if l >= len(c.Levels) {
		l = len(c.Levels) - 1
	}
	return l
}

// SpatialEncode computes S = [(E1⊕V1) + … + (Ei⊕Vi)] with the
// XOR-of-first-two tie-breaker appended for even channel counts
// (§5.1), entirely in unpacked form.
func SpatialEncode(im []Bits, levels []Bits) Bits {
	if len(im) != len(levels) {
		panic(fmt.Sprintf("hdref: SpatialEncode: %d items for %d levels", len(im), len(levels)))
	}
	var bound []Bits
	for i := range im {
		bound = append(bound, Xor(im[i], levels[i]))
	}
	if len(bound)%2 == 0 {
		bound = append(bound, Xor(bound[0], bound[1]))
	}
	return Majority(bound)
}

// RefAM is the unpacked associative memory.
type RefAM struct {
	Labels     []string
	Prototypes []Bits
}

// Classify returns the label of the minimum-Hamming-distance
// prototype (ties to the lowest index) and that distance.
func (am *RefAM) Classify(query Bits) (string, int) {
	if len(am.Prototypes) == 0 {
		panic("hdref: Classify on empty AM")
	}
	best, bestDist := 0, len(query)+1
	for i, p := range am.Prototypes {
		if d := Hamming(query, p); d < bestDist {
			best, bestDist = i, d
		}
	}
	return am.Labels[best], bestDist
}

// BundleWindows thresholds the componentwise sum of encoded windows
// into a prototype, resolving even-count ties with rng (nil → 0), the
// training rule of §2.1.1.
func BundleWindows(encoded []Bits, rng *rand.Rand) Bits {
	if len(encoded) == 0 {
		panic("hdref: BundleWindows of nothing")
	}
	d := len(encoded[0])
	counts := make([]int, d)
	for _, e := range encoded {
		mustMatch("BundleWindows", encoded[0], e)
		for i, b := range e {
			if b != 0 {
				counts[i]++
			}
		}
	}
	out := New(d)
	n := len(encoded)
	for i, c := range counts {
		switch {
		case 2*c > n:
			out[i] = 1
		case 2*c == n && rng != nil && rng.Intn(2) == 1:
			out[i] = 1
		}
	}
	return out
}
