package hdref

import (
	"math/rand"
	"testing"
)

func TestXor(t *testing.T) {
	a := Bits{0, 1, 0, 1}
	b := Bits{0, 0, 1, 1}
	want := Bits{0, 1, 1, 0}
	got := Xor(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Xor[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRotate(t *testing.T) {
	v := Bits{1, 0, 0, 0, 0}
	r := Rotate(v, 2)
	if r[2] != 1 {
		t.Fatalf("Rotate by 2 put the bit at %v", r)
	}
	r = Rotate(v, -1)
	if r[4] != 1 {
		t.Fatalf("Rotate by -1 put the bit at %v", r)
	}
	r = Rotate(v, 5)
	if r[0] != 1 {
		t.Fatalf("full rotation is not identity: %v", r)
	}
}

func TestHamming(t *testing.T) {
	a := Bits{0, 1, 1, 0}
	b := Bits{1, 1, 0, 0}
	if got := Hamming(a, b); got != 2 {
		t.Fatalf("Hamming = %d, want 2", got)
	}
}

func TestMajority(t *testing.T) {
	set := []Bits{
		{1, 1, 0, 0},
		{1, 0, 1, 0},
		{1, 0, 0, 0},
	}
	m := Majority(set)
	want := Bits{1, 0, 0, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Majority[%d] = %d, want %d", i, m[i], want[i])
		}
	}
}

func TestNGramHandComputed(t *testing.T) {
	// d=4, n=2: out = S0 ⊕ ρ¹S1.
	s0 := Bits{1, 0, 0, 0}
	s1 := Bits{0, 1, 0, 0}
	got := NGram([]Bits{s0, s1})
	// ρ¹S1 = {0,0,1,0}; XOR with S0 = {1,0,1,0}.
	want := Bits{1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NGram[%d] = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestNGramSingleIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := Random(100, rng)
	g := NGram([]Bits{v})
	if Hamming(g, v) != 0 {
		t.Fatal("1-gram must be the input itself")
	}
}

func TestNGramDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := Random(50, rng), Random(50, rng)
	keep := append(Bits(nil), a...)
	_ = NGram([]Bits{a, b})
	if Hamming(a, keep) != 0 {
		t.Fatal("NGram mutated its input")
	}
}
