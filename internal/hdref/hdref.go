// Package hdref is the unpacked golden-model implementation of binary
// HD computing, playing the role of the MATLAB reference in the paper:
// "its classification accuracy ... matches the golden MATLAB model"
// (DAC'18, §1). Every operation works on one byte per component with
// the most obvious possible code, so it is slow but transparently
// correct. The optimized bit-packed implementation in internal/hv is
// cross-validated against this package bit for bit.
package hdref

import (
	"fmt"
	"math/rand"
)

// Bits is an unpacked binary hypervector: one byte (0 or 1) per
// component.
type Bits []byte

// New returns the all-zero unpacked vector of dimension d.
func New(d int) Bits { return make(Bits, d) }

// Random returns an i.i.d. Bernoulli(1/2) unpacked vector.
func Random(d int, rng *rand.Rand) Bits {
	v := New(d)
	for i := range v {
		v[i] = byte(rng.Intn(2))
	}
	return v
}

// Xor returns the componentwise XOR of a and b.
func Xor(a, b Bits) Bits {
	mustMatch("Xor", a, b)
	out := New(len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Rotate returns a copy of v with each component moved k positions
// upward with wrap-around: out[(i+k) mod d] = v[i].
func Rotate(v Bits, k int) Bits {
	d := len(v)
	out := New(d)
	k %= d
	if k < 0 {
		k += d
	}
	for i := range v {
		out[(i+k)%d] = v[i]
	}
	return out
}

// Hamming returns the number of differing components.
func Hamming(a, b Bits) int {
	mustMatch("Hamming", a, b)
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Majority returns the componentwise majority over set; exact ties
// (even set sizes) resolve to 0. Callers wanting the accelerator's
// tie-break semantics must append the tie-break vector themselves.
func Majority(set []Bits) Bits {
	if len(set) == 0 {
		panic("hdref: Majority of no vectors")
	}
	d := len(set[0])
	out := New(d)
	for i := 0; i < d; i++ {
		c := 0
		for _, v := range set {
			mustMatch("Majority", set[0], v)
			if v[i] != 0 {
				c++
			}
		}
		if 2*c > len(set) {
			out[i] = 1
		}
	}
	return out
}

// NGram encodes a sequence of vectors into a single N-gram vector
// following the paper's temporal encoder: S_t ⊕ ρ¹S_{t+1} ⊕ ρ²S_{t+2}
// ⊕ … ⊕ ρ^{n-1}S_{t+n-1} (DAC'18, §2.1.1).
func NGram(seq []Bits) Bits {
	if len(seq) == 0 {
		panic("hdref: NGram of no vectors")
	}
	out := append(Bits(nil), seq[0]...)
	for k := 1; k < len(seq); k++ {
		r := Rotate(seq[k], k)
		for i := range out {
			out[i] ^= r[i]
		}
	}
	return out
}

func mustMatch(op string, a, b Bits) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdref: %s: dimension mismatch %d != %d", op, len(a), len(b)))
	}
}
