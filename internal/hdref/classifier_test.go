package hdref

import (
	"math/rand"
	"testing"
)

func TestRefItemMemory(t *testing.T) {
	m := NewRefItemMemory(500, 4, 1)
	if len(m.Items) != 4 {
		t.Fatalf("%d items", len(m.Items))
	}
	// Deterministic in the seed.
	m2 := NewRefItemMemory(500, 4, 1)
	if Hamming(m.Items[2], m2.Items[2]) != 0 {
		t.Fatal("same seed produced different items")
	}
	// Pairwise near-orthogonal.
	if d := Hamming(m.Items[0], m.Items[1]); d < 200 || d > 300 {
		t.Fatalf("item distance %d not near 250", d)
	}
}

func TestRefCIMQuantize(t *testing.T) {
	c := &RefCIM{Min: 0, Max: 10, Levels: make([]Bits, 11)}
	cases := []struct {
		x    float64
		want int
	}{{-1, 0}, {0, 0}, {0.4, 0}, {0.6, 1}, {5, 5}, {9.6, 10}, {10, 10}, {42, 10}}
	for _, tc := range cases {
		if got := c.Quantize(tc.x); got != tc.want {
			t.Errorf("Quantize(%g) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestSpatialEncodeOddAndEven(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const d = 400
	im := []Bits{Random(d, rng), Random(d, rng), Random(d, rng)}
	lv := []Bits{Random(d, rng), Random(d, rng), Random(d, rng)}
	odd := SpatialEncode(im, lv)
	// Odd channel count: plain majority of the three bound vectors.
	bound := []Bits{Xor(im[0], lv[0]), Xor(im[1], lv[1]), Xor(im[2], lv[2])}
	want := Majority(bound)
	if Hamming(odd, want) != 0 {
		t.Fatal("odd-channel encoding differs from direct majority")
	}
	// Even channel count appends the XOR tie-breaker.
	im4 := append(im, Random(d, rng))
	lv4 := append(lv, Random(d, rng))
	even := SpatialEncode(im4, lv4)
	bound4 := []Bits{
		Xor(im4[0], lv4[0]), Xor(im4[1], lv4[1]),
		Xor(im4[2], lv4[2]), Xor(im4[3], lv4[3]),
	}
	bound4 = append(bound4, Xor(bound4[0], bound4[1]))
	if Hamming(even, Majority(bound4)) != 0 {
		t.Fatal("even-channel encoding misses the tie-breaker")
	}
}

func TestSpatialEncodeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched lengths")
		}
	}()
	SpatialEncode([]Bits{New(4)}, []Bits{New(4), New(4)})
}

func TestRefAMClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 1000
	a, b := Random(d, rng), Random(d, rng)
	am := &RefAM{Labels: []string{"a", "b"}, Prototypes: []Bits{a, b}}
	q := append(Bits(nil), b...)
	for i := 0; i < 50; i++ {
		q[i] ^= 1
	}
	label, dist := am.Classify(q)
	if label != "b" || dist != 50 {
		t.Fatalf("Classify = (%q, %d)", label, dist)
	}
}

func TestRefAMEmptyPanics(t *testing.T) {
	am := &RefAM{}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty AM")
		}
	}()
	am.Classify(New(8))
}

func TestBundleWindows(t *testing.T) {
	set := []Bits{{1, 1, 0}, {1, 0, 0}, {1, 0, 1}}
	got := BundleWindows(set, nil)
	want := Bits{1, 0, 0}
	if Hamming(got, want) != 0 {
		t.Fatalf("bundle %v, want %v", got, want)
	}
	// Even counts: nil rng resolves ties to 0; a real rng splits them.
	tied := []Bits{{1}, {0}}
	if BundleWindows(tied, nil)[0] != 0 {
		t.Fatal("nil-rng tie must resolve to 0")
	}
	ones := 0
	for seed := int64(0); seed < 64; seed++ {
		if BundleWindows(tied, rand.New(rand.NewSource(seed)))[0] == 1 {
			ones++
		}
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("random tie break produced %d/64 ones", ones)
	}
}

func TestBundleWindowsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty bundle")
		}
	}()
	BundleWindows(nil, nil)
}
