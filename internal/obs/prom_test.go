package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a strict text-format (0.0.4) parser covering the
// subset the registry emits: # HELP / # TYPE lines and samples with an
// optional {k="v",...} label set. It unescapes HELP text and label
// values, so a write→parse cycle must hand back the original strings.
func parsePrometheus(t *testing.T, text string) (samples []promSample, help map[string]string, types map[string]string) {
	t.Helper()
	help, types = map[string]string{}, map[string]string{}
	unescapeHelp := strings.NewReplacer(`\\`, `\`, `\n`, "\n")
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			help[name] = unescapeHelp.Replace(text)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: TYPE %s declared twice", ln+1, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment: %q", ln+1, line)
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			s.name = rest[:i]
			rest = rest[i+1:]
			for {
				eq := strings.IndexByte(rest, '=')
				if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
					t.Fatalf("line %d: malformed label in %q", ln+1, line)
				}
				key := rest[:eq]
				rest = rest[eq+2:]
				var val strings.Builder
				i := 0
				for ; i < len(rest); i++ {
					if rest[i] == '\\' {
						i++
						if i >= len(rest) {
							t.Fatalf("line %d: dangling escape", ln+1)
						}
						switch rest[i] {
						case '\\':
							val.WriteByte('\\')
						case '"':
							val.WriteByte('"')
						case 'n':
							val.WriteByte('\n')
						default:
							t.Fatalf("line %d: bad escape \\%c", ln+1, rest[i])
						}
						continue
					}
					if rest[i] == '"' {
						break
					}
					val.WriteByte(rest[i])
				}
				if i >= len(rest) {
					t.Fatalf("line %d: unterminated label value", ln+1)
				}
				s.labels[key] = val.String()
				rest = rest[i+1:]
				if strings.HasPrefix(rest, ",") {
					rest = rest[1:]
					continue
				}
				if strings.HasPrefix(rest, "} ") {
					rest = rest[2:]
					break
				}
				t.Fatalf("line %d: malformed label set in %q", ln+1, line)
			}
		} else {
			name, after, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: sample without value: %q", ln+1, line)
			}
			s.name, rest = name, after
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, rest, err)
		}
		s.value = v
		samples = append(samples, s)
	}
	return samples, help, types
}

// TestPrometheusRoundTrip scrapes a fully populated host registry and
// re-parses the exposition: every line must conform, every registered
// metric must appear under a TYPE, histograms must keep their
// cumulative-bucket invariant, and hostile label values and HELP text
// must survive the escape/unescape cycle byte-for-byte.
func TestPrometheusRoundTrip(t *testing.T) {
	h := NewHostMetrics()
	RegisterRuntimeMetrics(h.Registry)

	// Populate everything, including hostile label values.
	h.Inference.RecordPredict(300 * time.Nanosecond)
	h.Inference.RecordStages(time.Microsecond, 2*time.Microsecond)
	h.Inference.RecordBatch(3, true, time.Millisecond)
	h.Stream.RecordSample()
	h.Stream.RecordDecision()
	h.Stream.RecordReplay(10, 2, time.Millisecond)
	h.Stream.RecordCorrection()
	hostile := "cl\\ass\n\"A\""
	h.Stream.RecordFeedback(hostile, hostile)
	h.Stream.RecordFeedback("rest", "fist")
	h.Serving.RecordPublish(3, 5, 4, time.Microsecond)
	h.Serving.RecordRequest(true)
	h.Serving.RecordQueueWait(time.Microsecond)
	h.Serving.RecordServeBatch(4)
	h.Pool.RecordCollective(4, 4)
	h.Models.RecordFleet(2, 1, 4096)
	h.Models.RecordOp("emg", "learn")
	h.Models.RecordModelState("emg", 7, 5, 4096, 3)
	h.Models.RecordRollingAccuracy("emg", 875)
	h.Models.RecordWALAppend()
	h.Models.RecordSnapshot(time.Millisecond)
	h.Models.RecordEviction()
	h.Models.RecordFaultIn(3, 2*time.Millisecond)
	h.Models.RecordWALFsync(500 * time.Microsecond)
	h.Registry.RegisterGaugeVecFunc("pulphd_model_slo_test_milli", "scrape-time labeled gauges", "model",
		func() []GaugeCell {
			return []GaugeCell{{Value: hostile, Gauge: 1500}, {Value: "emg", Gauge: 250}}
		})

	var buf bytes.Buffer
	if err := h.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, help, types := parsePrometheus(t, buf.String())

	// Every registered name appears with a TYPE; histogram series use
	// the _bucket/_sum/_count suffixes of their family.
	byName := map[string][]promSample{}
	for _, s := range samples {
		family := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(s.name, suffix); ok && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("sample %s has no TYPE line", s.name)
		}
		byName[family] = append(byName[family], s)
	}
	for _, name := range h.Registry.sortedNames() {
		if len(byName[name]) == 0 {
			t.Errorf("registered metric %s missing from exposition", name)
		}
		if help[name] == "" {
			t.Errorf("registered metric %s has no HELP", name)
		}
	}

	// The hostile confusion label survived the round trip.
	found := false
	for _, s := range byName["pulphd_stream_confusion_total"] {
		if s.labels["predicted"] == hostile && s.labels["actual"] == hostile {
			found = true
			if s.value != 1 {
				t.Errorf("hostile cell value %v, want 1", s.value)
			}
		}
	}
	if !found {
		t.Errorf("hostile label value did not survive the round trip:\n%s", buf.String())
	}

	// Histogram invariants: le bounds strictly increase, counts are
	// cumulative and end at +Inf == _count.
	for family, kind := range types {
		if kind != "histogram" {
			continue
		}
		var prevLE, prevCum float64
		var lastCum, count float64
		buckets := 0
		first := true
		for _, s := range byName[family] {
			switch s.name {
			case family + "_bucket":
				le := s.labels["le"]
				var bound float64
				if le == "+Inf" {
					bound = float64(1 << 62)
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("%s: bad le %q", family, le)
					}
					bound = b
				}
				if !first && (bound <= prevLE || s.value < prevCum) {
					t.Errorf("%s: bucket le=%s not cumulative/increasing", family, le)
				}
				prevLE, prevCum, lastCum = bound, s.value, s.value
				first = false
				buckets++
			case family + "_count":
				count = s.value
			}
		}
		if buckets != HistogramBuckets {
			t.Errorf("%s: %d buckets, want %d", family, buckets, HistogramBuckets)
		}
		if lastCum != count {
			t.Errorf("%s: +Inf bucket %v != count %v", family, lastCum, count)
		}
	}

	// The registry-lifecycle seconds histograms: typed histogram, bounds
	// rendered in seconds (the first le is well under a second), and the
	// recorded durations land in _sum at seconds scale.
	wantSum := map[string]float64{
		"pulphd_registry_wal_fsync_seconds": 500e-6,
		"pulphd_registry_faultin_seconds":   2e-3,
	}
	for family, recorded := range wantSum {
		if types[family] != "histogram" {
			t.Errorf("%s: TYPE %q, want histogram", family, types[family])
		}
		var sum, count float64
		firstLE := -1.0
		for _, s := range byName[family] {
			switch s.name {
			case family + "_sum":
				sum = s.value
			case family + "_count":
				count = s.value
			case family + "_bucket":
				if firstLE < 0 && s.labels["le"] != "+Inf" {
					b, err := strconv.ParseFloat(s.labels["le"], 64)
					if err != nil {
						t.Fatalf("%s: bad le %q", family, s.labels["le"])
					}
					firstLE = b
				}
			}
		}
		if count != 1 {
			t.Errorf("%s: count %v, want 1", family, count)
		}
		if sum < recorded*0.999 || sum > recorded*1.001 {
			t.Errorf("%s: sum %v, want ~%v (seconds scale)", family, sum, recorded)
		}
		if firstLE <= 0 || firstLE >= 1 {
			t.Errorf("%s: first le %v, want a sub-second bound", family, firstLE)
		}
	}

	// The scrape-time gauge-vec-func family renders labeled cells, with
	// hostile label values escaped and recovered.
	cells := map[string]float64{}
	for _, s := range byName["pulphd_model_slo_test_milli"] {
		cells[s.labels["model"]] = s.value
	}
	if types["pulphd_model_slo_test_milli"] != "gauge" {
		t.Errorf("gauge-vec-func TYPE %q, want gauge", types["pulphd_model_slo_test_milli"])
	}
	if cells[hostile] != 1500 || cells["emg"] != 250 {
		t.Errorf("gauge-vec-func cells %+v", cells)
	}

	// HELP escaping round-trips through the parser (registry HELP text
	// is plain today; pin the escaper directly on hostile input).
	if got := escapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Errorf("escapeHelp = %q", got)
	}
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}

	// Content type is the 0.0.4 text exposition.
	if PrometheusContentType != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", PrometheusContentType)
	}

	// The drift gauges exposed what RecordFeedback saw: 2 feedbacks,
	// 1 mismatch, rolling accuracy 500‰.
	want := map[string]float64{
		"pulphd_stream_feedback_total":            2,
		"pulphd_stream_feedback_mismatches":       1,
		"pulphd_stream_rolling_accuracy_permille": 500,
	}
	for name, v := range want {
		ss := byName[name]
		if len(ss) != 1 || ss[0].value != v {
			t.Errorf("%s = %+v, want %v", name, ss, v)
		}
	}
}

// TestDriftMonitor pins the rolling-window arithmetic, including wrap.
func TestDriftMonitor(t *testing.T) {
	d := NewDriftMonitor()
	if d.RollingAccuracyPermille() != -1 {
		t.Fatal("empty monitor should report -1 (no signal)")
	}
	d.RecordFeedback("a", "a")
	d.RecordFeedback("a", "b")
	if got := d.RollingAccuracyPermille(); got != 500 {
		t.Fatalf("rolling accuracy %d, want 500", got)
	}
	if d.Feedbacks() != 2 || d.Mismatches() != 1 {
		t.Fatalf("feedbacks=%d mismatches=%d", d.Feedbacks(), d.Mismatches())
	}
	// Fill a whole window with agreements: the early miss ages out.
	for i := 0; i < driftWindow; i++ {
		d.RecordFeedback("x", "x")
	}
	if got := d.RollingAccuracyPermille(); got != 1000 {
		t.Fatalf("rolling accuracy after wrap %d, want 1000", got)
	}
	// Lifetime confusion keeps the miss forever.
	if d.Mismatches() != 1 {
		t.Fatalf("mismatches after wrap %d, want 1", d.Mismatches())
	}
	cells := d.Confusion().Snapshot()
	var total int64
	for _, c := range cells {
		total += c.Count
	}
	if total != int64(driftWindow+2) {
		t.Fatalf("confusion total %d, want %d", total, driftWindow+2)
	}

	// Nil monitor: every method is a no-op.
	var nd *DriftMonitor
	nd.RecordFeedback("a", "b")
	if nd.Feedbacks() != 0 || nd.Mismatches() != 0 || nd.RollingAccuracyPermille() != -1 {
		t.Fatal("nil monitor reports state")
	}
	if nd.Confusion() != nil {
		t.Fatal("nil monitor has a confusion family")
	}
}

// TestCounterVec pins cell identity and sorted snapshots.
func TestCounterVec(t *testing.T) {
	v := NewCounterVec("predicted", "actual")
	if n1, n2 := v.LabelNames(); n1 != "predicted" || n2 != "actual" {
		t.Fatalf("label names %q,%q", n1, n2)
	}
	c := v.With("b", "b")
	c.Inc()
	if v.With("b", "b") != c {
		t.Fatal("With returned a different counter for the same labels")
	}
	v.With("a", "z").Add(2)
	snap := v.Snapshot()
	if len(snap) != 2 || snap[0].Values != [2]string{"a", "z"} || snap[1].Count != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	var nv *CounterVec
	nv.With("x", "y").Inc() // nil family hands out nil counters
	if nv.Snapshot() != nil {
		t.Fatal("nil family has cells")
	}
}

// TestRuntimeMetricsRegister checks the runtime gauges register and
// produce sane values (goroutines ≥ 1, heap goal > 0).
func TestRuntimeMetricsRegister(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	snap := r.Snapshot()
	if g, ok := snap["pulphd_go_goroutines"].(int64); !ok || g < 1 {
		t.Errorf("goroutines gauge = %v", snap["pulphd_go_goroutines"])
	}
	if g, ok := snap["pulphd_go_heap_goal_bytes"].(int64); !ok || g <= 0 {
		t.Errorf("heap goal gauge = %v", snap["pulphd_go_heap_goal_bytes"])
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pulphd_go_goroutines", "pulphd_go_heap_objects_bytes", "pulphd_go_gc_cycles", "pulphd_go_gc_pause_cpu_ns"} {
		if !strings.Contains(buf.String(), fmt.Sprintf("# TYPE %s gauge", name)) {
			t.Errorf("exposition lacks %s", name)
		}
	}
}
