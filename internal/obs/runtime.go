package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// This file samples the Go runtime through runtime/metrics and
// exposes the serving-relevant signals — GC pause CPU time, goroutine
// count, heap footprint — as scrape-time gauges. Sampling happens on
// the export path only (one metrics.Read per scrape, rate-limited by
// a small cache), so the instrumented hot paths never see it.

// runtimeSamples are the runtime/metrics names the sampler reads.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
	"/cpu/classes/gc/pause:cpu-seconds",
}

// runtimeSampler caches one runtime/metrics read briefly so a scrape
// of several gauges costs one Read, not five.
type runtimeSampler struct {
	mu     sync.Mutex
	at     time.Time
	values map[string]int64
	buf    []metrics.Sample
}

// runtimeCacheTTL bounds how stale a scrape can be; scrapes inside
// one TTL share a single metrics.Read.
const runtimeCacheTTL = 100 * time.Millisecond

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{values: map[string]int64{}}
	s.buf = make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		s.buf[i].Name = name
	}
	return s
}

// get returns the current value of the named runtime metric,
// refreshing the cached read when it expired. Unknown or unsupported
// metrics read as 0.
func (s *runtimeSampler) get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > runtimeCacheTTL {
		metrics.Read(s.buf)
		for _, smp := range s.buf {
			switch smp.Value.Kind() {
			case metrics.KindUint64:
				s.values[smp.Name] = int64(smp.Value.Uint64())
			case metrics.KindFloat64:
				// Seconds-valued metrics land as nanoseconds so every
				// gauge stays an integer.
				s.values[smp.Name] = int64(smp.Value.Float64() * 1e9)
			}
		}
		s.at = time.Now()
	}
	return s.values[name]
}

// RegisterRuntimeMetrics exposes the Go runtime health gauges on r
// under the canonical pulphd_go_* names. Values are sampled at scrape
// time via runtime/metrics.
func RegisterRuntimeMetrics(r *Registry) {
	s := newRuntimeSampler()
	gauge := func(name, help, sample string) {
		r.RegisterGaugeFunc(name, help, func() int64 { return s.get(sample) })
	}
	gauge("pulphd_go_goroutines", "live goroutines", "/sched/goroutines:goroutines")
	gauge("pulphd_go_heap_objects_bytes", "bytes occupied by live plus unswept heap objects", "/memory/classes/heap/objects:bytes")
	gauge("pulphd_go_heap_goal_bytes", "heap size the GC is pacing toward", "/gc/heap/goal:bytes")
	gauge("pulphd_go_gc_cycles", "completed GC cycles since process start", "/gc/cycles/total:gc-cycles")
	gauge("pulphd_go_gc_pause_cpu_ns", "cumulative CPU time in GC stop-the-world pauses (ns)", "/cpu/classes/gc/pause:cpu-seconds")
}
