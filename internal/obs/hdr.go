package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// This file is the high-resolution latency histogram the load harness
// records client-observed latencies into. The fixed-bucket Histogram
// above trades resolution for a stable Prometheus exposition (24
// powers-of-two buckets); tail quantiles like p999 need much finer
// grain, so HDR uses the HdrHistogram log-linear layout instead: every
// power-of-two magnitude is split into 2^hdrSubBits linear sub-buckets,
// bounding the relative quantile error at 1/2^hdrSubBits (~1.6%) across
// the whole 1 ns .. ~many-hours range without per-observation
// allocation. Recording is one atomic add, so any number of load
// workers share one recorder; quantiles are meant to be read after the
// writers stop (mid-run reads are approximate, never corrupt).

// hdrSubBits is the number of linear sub-bucket bits per power-of-two
// magnitude: 64 sub-buckets, ~1.6% worst-case relative error.
const hdrSubBits = 6

// hdrBuckets is the total bucket count covering all of int64.
const hdrBuckets = (64 - hdrSubBits) << hdrSubBits << 1

// HDR is a log-linear high-dynamic-range histogram of nanosecond
// measurements. The zero value is ready to use; methods on a nil *HDR
// are no-ops, like the rest of the package's metric types.
type HDR struct {
	counts [hdrBuckets]atomic.Int64
	total  atomic.Int64
	max    atomic.Int64
}

// hdrIndex maps a non-negative value to its bucket.
func hdrIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 1<<hdrSubBits {
		return int(u) // exact buckets for tiny values
	}
	shift := uint(bits.Len64(u) - 1 - hdrSubBits)
	idx := int(shift+1)<<hdrSubBits + int(u>>shift) - 1<<hdrSubBits
	if idx >= hdrBuckets {
		return hdrBuckets - 1
	}
	return idx
}

// hdrUpperBound returns the largest value mapping to bucket idx.
func hdrUpperBound(idx int) int64 {
	if idx < 1<<hdrSubBits {
		return int64(idx)
	}
	shift := uint(idx>>hdrSubBits) - 1
	base := uint64(1<<hdrSubBits+idx&(1<<hdrSubBits-1)) << shift
	return int64(base + 1<<shift - 1)
}

// Record adds one duration observation.
func (h *HDR) Record(d time.Duration) { h.RecordNanos(int64(d)) }

// RecordNanos adds one nanosecond observation.
func (h *HDR) RecordNanos(ns int64) {
	if h == nil {
		return
	}
	h.counts[hdrIndex(ns)].Add(1)
	h.total.Add(1)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *HDR) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Max returns the largest recorded observation, 0 when empty.
func (h *HDR) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile returns the value at quantile q in [0, 1] — the upper bound
// of the bucket holding the ceil(q·count)-th observation, so the
// reported p99 is never below the true one by more than the bucket's
// ~1.6% width. Returns 0 when the histogram is empty.
func (h *HDR) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < hdrBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(hdrUpperBound(i))
		}
	}
	return time.Duration(h.max.Load())
}

// Merge folds other's observations into h (other keeps them too). Both
// histograms should be quiescent; merging mid-record never corrupts
// either, it just races individual counts.
func (h *HDR) Merge(other *HDR) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
			h.total.Add(n)
		}
	}
	for {
		m, om := h.max.Load(), other.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			return
		}
	}
}

// Reset clears every bucket. Not safe against concurrent Record.
func (h *HDR) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.max.Store(0)
}
