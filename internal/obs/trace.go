package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"pulphd/internal/pulp"
)

// Lane names the five cycle lanes a KernelResult decomposes into.
// They become the per-platform "threads" of the Chrome trace.
var laneNames = [...]string{"compute", "serial", "runtime", "dma", "dma (hidden)"}

// Lane indices.
const (
	laneCompute = iota
	laneSerial
	laneRuntime
	laneDMA
	laneDMAHidden
)

// KernelEvent is one recorded kernel: its cycle accounting plus the
// cumulative start offset on its platform's timeline.
type KernelEvent struct {
	Start  int64 // cycles since the platform timeline began
	Result pulp.KernelResult
}

// platformTrace is the sequential kernel timeline of one platform
// configuration.
type platformTrace struct {
	name   string
	cores  int
	cursor int64
	events []KernelEvent
}

// Trace records per-kernel simulator cycle accounting. It implements
// pulp.Tracer; attach it with Platform.Tracer = trace and every
// Run/RunChain kernel lands on the platform's timeline, kernels
// back to back the way the cluster executes a chain. Safe for
// concurrent recording from multiple goroutines.
type Trace struct {
	mu        sync.Mutex
	platforms []*platformTrace
	index     map[string]*platformTrace
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{index: map[string]*platformTrace{}}
}

// RecordKernel implements pulp.Tracer.
func (t *Trace) RecordKernel(platform string, cores int, r pulp.KernelResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := fmt.Sprintf("%s/%d", platform, cores)
	pt := t.index[key]
	if pt == nil {
		pt = &platformTrace{name: platform, cores: cores}
		t.index[key] = pt
		t.platforms = append(t.platforms, pt)
	}
	pt.events = append(pt.events, KernelEvent{Start: pt.cursor, Result: r})
	pt.cursor += r.Total()
}

// Len returns the number of recorded kernel events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, pt := range t.platforms {
		n += len(pt.events)
	}
	return n
}

// PlatformTotal is one platform timeline's cycle total.
type PlatformTotal struct {
	Name   string
	Cores  int
	Cycles int64
}

// Totals returns the total recorded cycles per platform timeline, in
// recording order — the input of the energy-per-classification
// estimate `pulphd trace` prints.
func (t *Trace) Totals() []PlatformTotal {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PlatformTotal, 0, len(t.platforms))
	for _, pt := range t.platforms {
		var cycles int64
		for _, ev := range pt.events {
			cycles += ev.Result.Total()
		}
		out = append(out, PlatformTotal{Name: pt.name, Cores: pt.cores, Cycles: cycles})
	}
	return out
}

// traceEvent is one Chrome trace-event JSON object. The format is the
// Trace Event Format's JSON Array/Object flavour; chrome://tracing
// and Perfetto both load it. Timestamps are microseconds by spec — we
// map one simulated cycle to one microsecond, so durations read
// directly as cycles.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the trace as Chrome trace-event JSON. One
// process per platform configuration, one thread per cycle lane;
// every kernel emits a complete ("ph":"X") slice per non-zero lane.
// Hidden DMA overlaps the compute slice on its own lane, visualizing
// what double buffering buried.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	evs, _ := t.appendEventsLocked(nil, 1)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

// appendEventsLocked renders the platform timelines as trace events,
// one process per platform starting at pidBase. Callers hold t.mu.
func (t *Trace) appendEventsLocked(evs []traceEvent, pidBase int) ([]traceEvent, int) {
	for pi, pt := range t.platforms {
		pid := pidBase + pi
		evs = append(evs, traceEvent{
			Name: "process_name", Phase: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("%s (%d cores)", pt.name, pt.cores)},
		}, traceEvent{
			Name: "process_sort_index", Phase: "M", Pid: pid,
			Args: map[string]any{"sort_index": pi},
		})
		for tid, lane := range laneNames {
			evs = append(evs, traceEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": lane},
			}, traceEvent{
				Name: "thread_sort_index", Phase: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"sort_index": tid},
			})
		}
		for _, ev := range pt.events {
			r := ev.Result
			// Sequential lanes in execution order; the hidden-DMA lane
			// runs concurrently with compute.
			slice := func(tid int, ts, dur int64) {
				if dur <= 0 {
					return
				}
				evs = append(evs, traceEvent{
					Name: r.Name, Phase: "X", Ts: ts, Dur: dur,
					Pid: pid, Tid: tid, Cat: laneNames[tid],
					Args: map[string]any{"cycles": dur, "cores": pt.cores},
				})
			}
			ts := ev.Start
			slice(laneCompute, ts, r.ComputeCycles)
			slice(laneDMAHidden, ts, r.HiddenDMACycles)
			ts += r.ComputeCycles
			slice(laneSerial, ts, r.SerialCycles)
			ts += r.SerialCycles
			slice(laneRuntime, ts, r.RuntimeCycles)
			ts += r.RuntimeCycles
			slice(laneDMA, ts, r.DMACycles)
		}
	}
	return evs, pidBase + len(t.platforms)
}

// WriteSummary renders the trace as an aligned per-kernel cycle
// table, one block per platform, with a TOTAL row per platform and
// each kernel's share of the platform total.
func (t *Trace) WriteSummary(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "platform\tcores\tkernel\tcompute\tserial\truntime\tdma\tdma-hidden\ttotal\tshare")
	for _, pt := range t.platforms {
		var sum pulp.KernelResult
		for _, ev := range pt.events {
			r := ev.Result
			sum.ComputeCycles += r.ComputeCycles
			sum.SerialCycles += r.SerialCycles
			sum.RuntimeCycles += r.RuntimeCycles
			sum.DMACycles += r.DMACycles
			sum.HiddenDMACycles += r.HiddenDMACycles
		}
		for _, ev := range pt.events {
			r := ev.Result
			share := 0.0
			if sum.Total() > 0 {
				share = 100 * float64(r.Total()) / float64(sum.Total())
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f%%\n",
				pt.name, pt.cores, r.Name, r.ComputeCycles, r.SerialCycles,
				r.RuntimeCycles, r.DMACycles, r.HiddenDMACycles, r.Total(), share)
		}
		fmt.Fprintf(tw, "%s\t%d\tTOTAL\t%d\t%d\t%d\t%d\t%d\t%d\t100.0%%\n",
			pt.name, pt.cores, sum.ComputeCycles, sum.SerialCycles,
			sum.RuntimeCycles, sum.DMACycles, sum.HiddenDMACycles, sum.Total())
	}
	return tw.Flush()
}
