// Package slo is the per-tenant service-level-objective engine of the
// serving tier. Each registry model gets a Tracker holding its latency
// and error objectives, an obs.HDR latency histogram, and a ring of
// coarse 10-second buckets that two sliding windows — fast (5 m) and
// slow (1 h) — are summed from at read time. Burn rate is the classic
// multi-window formulation: the fraction of the error budget consumed
// per unit budget (bad-event fraction ÷ budget), and a breach fires
// only when BOTH windows burn above the threshold, so short blips and
// long slow leaks are separated from pageable incidents.
//
// The record path is built for the serving hot loop: one RLock'd map
// lookup, a handful of atomic adds, no allocation. Breach evaluation
// is throttled (CheckEvery, default 1 s) so its window sums and the
// OnBreach callback stay off the per-request path.
package slo

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pulphd/internal/obs"
)

// BucketSeconds is the ring-bucket width. Window sums see request
// counts at this granularity; finer would cost ring size, coarser
// would blur the fast window.
const BucketSeconds = 10

// Bucket counts per window: the slow 1-hour window is the whole ring,
// the fast 5-minute window its most recent slice.
const (
	slowBuckets = 3600 / BucketSeconds
	fastBuckets = 300 / BucketSeconds
)

// FastWindow and SlowWindow are the two burn-rate windows.
const (
	FastWindow = fastBuckets * BucketSeconds * time.Second
	SlowWindow = slowBuckets * BucketSeconds * time.Second
)

// Objective is one model's service-level objective: LatencyTarget of
// requests must finish within Latency, and at most ErrorBudget of them
// may fail. A zero Latency (or a target outside (0,1)) disables the
// latency objective; a non-positive ErrorBudget disables the error
// objective.
type Objective struct {
	Latency       time.Duration
	LatencyTarget float64
	ErrorBudget   float64
}

// latencyBudget returns the allowed slow-request fraction, 0 when the
// latency objective is disabled.
func (o Objective) latencyBudget() float64 {
	if o.Latency <= 0 || o.LatencyTarget <= 0 || o.LatencyTarget >= 1 {
		return 0
	}
	return 1 - o.LatencyTarget
}

// bucket is one 10-second counting slot. stamp holds epoch+1 (0 means
// never written); a recorder landing in a recycled slot CASes the
// stamp forward and zeroes the counts. The reset is approximate under
// contention — a racing add can land before the zeroing — which is
// fine for burn rates over hundreds of events and keeps the path
// lock-free.
type bucket struct {
	stamp atomic.Int64
	reqs  atomic.Int64
	errs  atomic.Int64
	slow  atomic.Int64
}

// Tracker accumulates one model's SLO state.
type Tracker struct {
	obj        atomic.Pointer[Objective]
	buckets    [slowBuckets]bucket
	lat        obs.HDR
	totalReqs  atomic.Int64
	totalErrs  atomic.Int64
	lastCheck  atomic.Int64 // unix nanos of the last breach evaluation
	lastBreach atomic.Int64 // unix nanos of the last fired breach
	breaches   atomic.Int64
	breached   atomic.Bool // latched by the evaluator until burn clears
}

// Window is one computed burn-rate window.
type Window struct {
	Seconds     int64   `json:"seconds"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Slow        int64   `json:"slow"`
	ErrorBurn   float64 `json:"error_burn"`
	LatencyBurn float64 `json:"latency_burn"`
	Burn        float64 `json:"burn"`
}

// ObjectiveJSON is the wire form of an Objective.
type ObjectiveJSON struct {
	LatencyMs     float64 `json:"latency_ms"`
	LatencyTarget float64 `json:"latency_target"`
	ErrorBudget   float64 `json:"error_budget"`
}

// Status is one model's full SLO state — the GET /models/{name}/slo
// payload.
type Status struct {
	Model            string        `json:"model"`
	Objective        ObjectiveJSON `json:"objective"`
	BurnThreshold    float64       `json:"burn_threshold"`
	Fast             Window        `json:"fast_5m"`
	Slow             Window        `json:"slow_1h"`
	Breached         bool          `json:"breached"`
	Breaches         int64         `json:"breaches_total"`
	LastBreachUnixNs int64         `json:"last_breach_unix_ns,omitempty"`
	TotalRequests    int64         `json:"requests_total"`
	TotalErrors      int64         `json:"errors_total"`
	P50Ms            float64       `json:"p50_ms"`
	P99Ms            float64       `json:"p99_ms"`
	P999Ms           float64       `json:"p999_ms"`
}

// Config parameterizes an Engine. The zero value gets sane defaults
// from New.
type Config struct {
	// Default is the objective models start with until SetObjective
	// overrides them.
	Default Objective
	// BurnThreshold is the burn rate both windows must exceed to count
	// as a breach (default 2: burning the budget at twice the rate that
	// exactly exhausts it over the window).
	BurnThreshold float64
	// MinEvents gates breaches on the fast window holding at least this
	// many requests, so a single early failure cannot page (default 10).
	MinEvents int64
	// CheckEvery throttles breach evaluation per model (default 1 s;
	// negative means evaluate on every Record — tests only).
	CheckEvery time.Duration
	// Cooldown is the minimum gap between OnBreach firings per model
	// (default 1 m).
	Cooldown time.Duration
	// Now is the unix-nano clock, swappable in tests.
	Now func() int64
	// OnBreach fires (outside any engine lock) when a model's burn rate
	// crosses BurnThreshold in both windows.
	OnBreach func(model string, st Status)
}

// Engine tracks SLO state for every model that has recorded traffic.
// All methods are safe for concurrent use and nil-safe, so a server
// built without an engine records nothing.
type Engine struct {
	cfg      Config
	checkGap int64 // CheckEvery in nanos, 0 = every Record
	mu       sync.RWMutex
	trackers map[string]*Tracker
}

// New returns an engine with defaults filled in.
func New(cfg Config) *Engine {
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 2
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 10
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = time.Second
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	e := &Engine{cfg: cfg, trackers: map[string]*Tracker{}}
	if cfg.CheckEvery > 0 {
		e.checkGap = cfg.CheckEvery.Nanoseconds()
	}
	return e
}

// tracker returns the model's tracker, creating it on first use.
func (e *Engine) tracker(model string) *Tracker {
	e.mu.RLock()
	t := e.trackers[model]
	e.mu.RUnlock()
	if t != nil {
		return t
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if t = e.trackers[model]; t == nil {
		t = &Tracker{}
		obj := e.cfg.Default
		t.obj.Store(&obj)
		e.trackers[model] = t
	}
	return t
}

// Record folds one finished request into the model's SLO state. The
// non-breach path is allocation-free after the model's first request.
func (e *Engine) Record(model string, dur time.Duration, failed bool) {
	if e == nil {
		return
	}
	t := e.tracker(model)
	obj := *t.obj.Load()
	now := e.cfg.Now()
	epoch := now / (BucketSeconds * 1e9)
	b := &t.buckets[epoch%slowBuckets]
	stamp := epoch + 1
	if s := b.stamp.Load(); s != stamp && b.stamp.CompareAndSwap(s, stamp) {
		b.reqs.Store(0)
		b.errs.Store(0)
		b.slow.Store(0)
	}
	b.reqs.Add(1)
	t.totalReqs.Add(1)
	if failed {
		b.errs.Add(1)
		t.totalErrs.Add(1)
	}
	if obj.Latency > 0 && dur > obj.Latency {
		b.slow.Add(1)
	}
	t.lat.Record(dur)
	e.maybeCheck(model, t, now, epoch)
}

// maybeCheck runs the throttled breach evaluation.
func (e *Engine) maybeCheck(model string, t *Tracker, now, epoch int64) {
	last := t.lastCheck.Load()
	if now-last < e.checkGap {
		return
	}
	if !t.lastCheck.CompareAndSwap(last, now) {
		return
	}
	st := e.status(model, t, epoch)
	over := st.Fast.Burn >= e.cfg.BurnThreshold &&
		st.Slow.Burn >= e.cfg.BurnThreshold &&
		st.Fast.Requests >= e.cfg.MinEvents
	t.breached.Store(over)
	if !over || e.cfg.OnBreach == nil {
		return
	}
	lastFire := t.lastBreach.Load()
	if now-lastFire < e.cfg.Cooldown.Nanoseconds() || !t.lastBreach.CompareAndSwap(lastFire, now) {
		return
	}
	t.breaches.Add(1)
	st.Breaches = t.breaches.Load()
	st.LastBreachUnixNs = now
	st.Breached = true
	e.cfg.OnBreach(model, st)
}

// window sums the ring buckets whose epoch falls inside the last n
// buckets ending at epoch, and derives burn rates against obj.
func (t *Tracker) window(epoch int64, n int, obj Objective) Window {
	w := Window{Seconds: int64(n) * BucketSeconds}
	min := epoch - int64(n) + 1
	for i := range t.buckets {
		b := &t.buckets[i]
		s := b.stamp.Load()
		if s == 0 {
			continue
		}
		if e := s - 1; e < min || e > epoch {
			continue
		}
		w.Requests += b.reqs.Load()
		w.Errors += b.errs.Load()
		w.Slow += b.slow.Load()
	}
	if w.Requests > 0 {
		if obj.ErrorBudget > 0 {
			w.ErrorBurn = float64(w.Errors) / float64(w.Requests) / obj.ErrorBudget
		}
		if lb := obj.latencyBudget(); lb > 0 {
			w.LatencyBurn = float64(w.Slow) / float64(w.Requests) / lb
		}
	}
	w.Burn = w.ErrorBurn
	if w.LatencyBurn > w.Burn {
		w.Burn = w.LatencyBurn
	}
	return w
}

// status computes a model's Status at the given epoch.
func (e *Engine) status(model string, t *Tracker, epoch int64) Status {
	obj := *t.obj.Load()
	return Status{
		Model: model,
		Objective: ObjectiveJSON{
			LatencyMs:     float64(obj.Latency) / 1e6,
			LatencyTarget: obj.LatencyTarget,
			ErrorBudget:   obj.ErrorBudget,
		},
		BurnThreshold:    e.cfg.BurnThreshold,
		Fast:             t.window(epoch, fastBuckets, obj),
		Slow:             t.window(epoch, slowBuckets, obj),
		Breached:         t.breached.Load(),
		Breaches:         t.breaches.Load(),
		LastBreachUnixNs: t.lastBreach.Load(),
		TotalRequests:    t.totalReqs.Load(),
		TotalErrors:      t.totalErrs.Load(),
		P50Ms:            float64(t.lat.Quantile(0.50)) / 1e6,
		P99Ms:            float64(t.lat.Quantile(0.99)) / 1e6,
		P999Ms:           float64(t.lat.Quantile(0.999)) / 1e6,
	}
}

// Status returns the model's current SLO state. A model with no
// recorded traffic reports the default objective and empty windows.
func (e *Engine) Status(model string) Status {
	if e == nil {
		return Status{Model: model}
	}
	e.mu.RLock()
	t := e.trackers[model]
	e.mu.RUnlock()
	now := e.cfg.Now()
	epoch := now / (BucketSeconds * 1e9)
	if t == nil {
		obj := e.cfg.Default
		return Status{
			Model: model,
			Objective: ObjectiveJSON{
				LatencyMs:     float64(obj.Latency) / 1e6,
				LatencyTarget: obj.LatencyTarget,
				ErrorBudget:   obj.ErrorBudget,
			},
			BurnThreshold: e.cfg.BurnThreshold,
			Fast:          Window{Seconds: fastBuckets * BucketSeconds},
			Slow:          Window{Seconds: slowBuckets * BucketSeconds},
		}
	}
	return e.status(model, t, epoch)
}

// StatusAll returns every tracked model's status, sorted by name.
func (e *Engine) StatusAll() []Status {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	names := make([]string, 0, len(e.trackers))
	for name := range e.trackers {
		names = append(names, name)
	}
	e.mu.RUnlock()
	sort.Strings(names)
	out := make([]Status, 0, len(names))
	for _, name := range names {
		out = append(out, e.Status(name))
	}
	return out
}

// SetObjective overrides one model's objective (creating its tracker),
// the per-tenant half of "per-tenant objectives".
func (e *Engine) SetObjective(model string, obj Objective) {
	if e == nil {
		return
	}
	t := e.tracker(model)
	t.obj.Store(&obj)
}

// Objective returns the model's effective objective (the engine
// default when the model has no tracker yet).
func (e *Engine) Objective(model string) Objective {
	if e == nil {
		return Objective{}
	}
	e.mu.RLock()
	t := e.trackers[model]
	e.mu.RUnlock()
	if t == nil {
		return e.cfg.Default
	}
	return *t.obj.Load()
}

// SlowThreshold returns the model's latency objective — the per-model
// "slower than this pins the timeline" bound of the flight recorder.
// Zero when disabled or on a nil engine.
func (e *Engine) SlowThreshold(model string) time.Duration {
	if e == nil {
		return 0
	}
	e.mu.RLock()
	t := e.trackers[model]
	e.mu.RUnlock()
	if t == nil {
		return e.cfg.Default.Latency
	}
	return t.obj.Load().Latency
}

// Forget drops a deleted model's tracker so its series leave the
// exposition.
func (e *Engine) Forget(model string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	delete(e.trackers, model)
	e.mu.Unlock()
}

// burnCells renders one burn-rate gauge family; milli-units keep the
// registry's int64 gauge contract while preserving 3 decimals.
func (e *Engine) burnCells(fast bool) []obs.GaugeCell {
	out := make([]obs.GaugeCell, 0, 4)
	for _, st := range e.StatusAll() {
		burn := st.Slow.Burn
		if fast {
			burn = st.Fast.Burn
		}
		out = append(out, obs.GaugeCell{Value: st.Model, Gauge: int64(burn * 1000)})
	}
	return out
}

// RegisterMetrics exposes the engine as the pulphd_model_slo_* gauge
// families, computed at scrape time.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.RegisterGaugeVecFunc("pulphd_model_slo_burn_fast_milli",
		"5m-window SLO burn rate by model, in 1/1000 (1000 = burning exactly the budget)",
		"model", func() []obs.GaugeCell { return e.burnCells(true) })
	r.RegisterGaugeVecFunc("pulphd_model_slo_burn_slow_milli",
		"1h-window SLO burn rate by model, in 1/1000",
		"model", func() []obs.GaugeCell { return e.burnCells(false) })
	r.RegisterGaugeVecFunc("pulphd_model_slo_breached",
		"1 while the model's burn rate exceeds the threshold in both windows",
		"model", func() []obs.GaugeCell {
			out := make([]obs.GaugeCell, 0, 4)
			for _, st := range e.StatusAll() {
				v := int64(0)
				if st.Breached {
					v = 1
				}
				out = append(out, obs.GaugeCell{Value: st.Model, Gauge: v})
			}
			return out
		})
	r.RegisterGaugeVecFunc("pulphd_model_slo_breaches_total",
		"SLO burn-rate breaches fired by model since start",
		"model", func() []obs.GaugeCell {
			out := make([]obs.GaugeCell, 0, 4)
			for _, st := range e.StatusAll() {
				out = append(out, obs.GaugeCell{Value: st.Model, Gauge: st.Breaches})
			}
			return out
		})
}
