package slo

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pulphd/internal/obs"
)

// fakeClock is a settable unix-nano clock for deterministic windows.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) set(t time.Duration)     { c.ns.Store(int64(t)) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// newTestEngine builds an engine on a fake clock that evaluates
// breaches on every Record (CheckEvery < 0).
func newTestEngine(cfg Config, clk *fakeClock) *Engine {
	cfg.Now = clk.now
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = -1
	}
	return New(cfg)
}

// t0 places the clock well past epoch zero so bucket stamps are
// unambiguous and cooldown comparisons against 0 behave.
const t0 = 100 * time.Hour

func TestDefaultsFilled(t *testing.T) {
	e := New(Config{})
	if e.cfg.BurnThreshold != 2 || e.cfg.MinEvents != 10 ||
		e.cfg.CheckEvery != time.Second || e.cfg.Cooldown != time.Minute || e.cfg.Now == nil {
		t.Fatalf("defaults not filled: %+v", e.cfg)
	}
}

func TestStatusUntrackedModel(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{Default: Objective{Latency: 25 * time.Millisecond, LatencyTarget: 0.99, ErrorBudget: 0.01}}, clk)
	st := e.Status("ghost")
	if st.Model != "ghost" || st.Objective.LatencyMs != 25 || st.Objective.ErrorBudget != 0.01 {
		t.Fatalf("untracked status %+v", st)
	}
	if st.Fast.Requests != 0 || st.Fast.Seconds != 300 || st.Slow.Seconds != 3600 {
		t.Fatalf("untracked windows %+v / %+v", st.Fast, st.Slow)
	}
	if e.StatusAll() != nil && len(e.StatusAll()) != 0 {
		t.Fatalf("StatusAll before traffic: %v", e.StatusAll())
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.Record("m", time.Millisecond, true)
	e.SetObjective("m", Objective{})
	e.Forget("m")
	if e.SlowThreshold("m") != 0 || e.StatusAll() != nil {
		t.Fatal("nil engine leaked state")
	}
	if st := e.Status("m"); st.Model != "m" {
		t.Fatalf("nil engine status %+v", st)
	}
	if (e.Objective("m") != Objective{}) {
		t.Fatal("nil engine objective")
	}
}

// TestBurnRates pins the window sums and the error/latency burn math:
// burn = bad fraction ÷ budget, the window's burn the max of the two.
func TestBurnRates(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{
		Default: Objective{Latency: 10 * time.Millisecond, LatencyTarget: 0.99, ErrorBudget: 0.01},
	}, clk)
	for i := 0; i < 100; i++ {
		failed := i < 10        // 10% errors → error burn 10
		dur := time.Millisecond // fast
		if i < 20 {
			dur = 20 * time.Millisecond // 20% slow → latency burn 20
		}
		e.Record("emg", dur, failed)
	}
	st := e.Status("emg")
	if st.Fast.Requests != 100 || st.Fast.Errors != 10 || st.Fast.Slow != 20 {
		t.Fatalf("fast window %+v", st.Fast)
	}
	if st.Slow.Requests != 100 {
		t.Fatalf("slow window %+v", st.Slow)
	}
	approx := func(got, want float64) bool { return got > want*0.999 && got < want*1.001 }
	if !approx(st.Fast.ErrorBurn, 10) || !approx(st.Fast.LatencyBurn, 20) || !approx(st.Fast.Burn, 20) {
		t.Fatalf("burns %+v", st.Fast)
	}
	if st.TotalRequests != 100 || st.TotalErrors != 10 {
		t.Fatalf("totals %d/%d", st.TotalRequests, st.TotalErrors)
	}
	// The HDR fed every duration: p50 near 1ms, p99 near 20ms.
	if st.P50Ms < 0.9 || st.P50Ms > 1.2 || st.P99Ms < 18 || st.P99Ms > 22 {
		t.Fatalf("quantiles p50=%v p99=%v", st.P50Ms, st.P99Ms)
	}
}

// TestWindowAging moves the clock: traffic older than 5 minutes leaves
// the fast window but stays in the slow one; past an hour it is gone
// from both (and its ring buckets recycle for new epochs).
func TestWindowAging(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{Default: Objective{ErrorBudget: 0.01}}, clk)
	for i := 0; i < 50; i++ {
		e.Record("emg", time.Millisecond, true)
	}
	clk.advance(6 * time.Minute)
	e.Record("emg", time.Millisecond, false)
	st := e.Status("emg")
	if st.Fast.Requests != 1 || st.Fast.Errors != 0 {
		t.Fatalf("fast window after 6m %+v", st.Fast)
	}
	if st.Slow.Requests != 51 || st.Slow.Errors != 50 {
		t.Fatalf("slow window after 6m %+v", st.Slow)
	}
	clk.advance(time.Hour + time.Minute)
	st = e.Status("emg")
	if st.Fast.Requests != 0 || st.Slow.Requests != 0 {
		t.Fatalf("windows after 1h+ %+v / %+v", st.Fast, st.Slow)
	}
	// A record landing in a recycled bucket zeroes the stale counts.
	e.Record("emg", time.Millisecond, false)
	st = e.Status("emg")
	if st.Slow.Requests != 1 || st.Slow.Errors != 0 {
		t.Fatalf("recycled bucket %+v", st.Slow)
	}
}

// TestBreachFireAndCooldown drives an error storm through the engine:
// the breach fires once when both windows burn over threshold with
// enough events, the cooldown suppresses re-fires, and the latch
// clears when the burn does.
func TestBreachFireAndCooldown(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	var fired []Status
	e := newTestEngine(Config{
		Default:       Objective{ErrorBudget: 0.01},
		BurnThreshold: 2,
		MinEvents:     10,
		Cooldown:      30 * time.Second,
		OnBreach: func(model string, st Status) {
			if model != "emg" {
				t.Errorf("breach model %q", model)
			}
			fired = append(fired, st)
		},
	}, clk)
	// 9 failures: burn is enormous but MinEvents gates the page.
	for i := 0; i < 9; i++ {
		e.Record("emg", time.Millisecond, true)
	}
	if len(fired) != 0 {
		t.Fatalf("breach fired under MinEvents: %d", len(fired))
	}
	// The 10th crosses the gate; the rest sit inside the cooldown.
	for i := 0; i < 10; i++ {
		e.Record("emg", time.Millisecond, true)
	}
	if len(fired) != 1 {
		t.Fatalf("breach fired %d times, want 1", len(fired))
	}
	if !fired[0].Breached || fired[0].Breaches != 1 || fired[0].LastBreachUnixNs != int64(t0) {
		t.Fatalf("breach status %+v", fired[0])
	}
	if !e.Status("emg").Breached {
		t.Fatal("breached latch not set")
	}
	// Past the cooldown the still-burning model pages again.
	clk.advance(31 * time.Second)
	e.Record("emg", time.Millisecond, true)
	if len(fired) != 2 || fired[1].Breaches != 2 {
		t.Fatalf("post-cooldown fires %d", len(fired))
	}
	// Everything ages out; one healthy request clears the latch.
	clk.advance(2 * time.Hour)
	e.Record("emg", time.Millisecond, false)
	if e.Status("emg").Breached {
		t.Fatal("breached latch stuck after burn cleared")
	}
	if len(fired) != 2 {
		t.Fatalf("breach fired while healthy: %d", len(fired))
	}
}

func TestSetObjectivePerTenant(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	def := Objective{Latency: 50 * time.Millisecond, LatencyTarget: 0.99, ErrorBudget: 0.01}
	e := newTestEngine(Config{Default: def}, clk)
	if th := e.SlowThreshold("a"); th != 50*time.Millisecond {
		t.Fatalf("default slow threshold %v", th)
	}
	e.SetObjective("a", Objective{Latency: 5 * time.Millisecond, LatencyTarget: 0.999, ErrorBudget: 0.001})
	if th := e.SlowThreshold("a"); th != 5*time.Millisecond {
		t.Fatalf("tenant slow threshold %v", th)
	}
	if e.SlowThreshold("b") != 50*time.Millisecond {
		t.Fatal("tenant objective leaked to another model")
	}
	if e.Objective("a").ErrorBudget != 0.001 || e.Objective("b") != def {
		t.Fatal("Objective lookup wrong")
	}
	// The tightened objective reclassifies slowness immediately.
	e.Record("a", 10*time.Millisecond, false)
	if st := e.Status("a"); st.Fast.Slow != 1 {
		t.Fatalf("slow count under tenant objective %+v", st.Fast)
	}
	e.Forget("a")
	if e.SlowThreshold("a") != 50*time.Millisecond {
		t.Fatal("Forget did not drop the tracker")
	}
}

func TestStatusAllSorted(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{}, clk)
	for _, m := range []string{"zeta", "alpha", "mid"} {
		e.Record(m, time.Millisecond, false)
	}
	all := e.StatusAll()
	if len(all) != 3 || all[0].Model != "alpha" || all[1].Model != "mid" || all[2].Model != "zeta" {
		t.Fatalf("StatusAll order %+v", all)
	}
}

// TestRegisterMetrics scrapes the four gauge families through a real
// obs registry.
func TestRegisterMetrics(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{
		Default:       Objective{ErrorBudget: 0.01},
		BurnThreshold: 2,
		MinEvents:     5,
		Cooldown:      time.Second,
		OnBreach:      func(string, Status) {},
	}, clk)
	for i := 0; i < 10; i++ {
		e.Record("emg", time.Millisecond, true)
	}
	r := obs.NewRegistry()
	e.RegisterMetrics(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`pulphd_model_slo_burn_fast_milli{model="emg"} 100000`,
		`pulphd_model_slo_burn_slow_milli{model="emg"} 100000`,
		`pulphd_model_slo_breached{model="emg"} 1`,
		`pulphd_model_slo_breaches_total{model="emg"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}

// TestRecordAllocs pins the hot path: after a model's first request,
// Record (including its throttled breach check) allocates nothing.
func TestRecordAllocs(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{
		Default:   Objective{Latency: 10 * time.Millisecond, LatencyTarget: 0.99, ErrorBudget: 0.01},
		MinEvents: 1 << 60, // breaches never fire, checks still run
	}, clk)
	e.Record("emg", time.Millisecond, false)
	if allocs := testing.AllocsPerRun(1000, func() {
		clk.advance(time.Millisecond)
		e.Record("emg", 20*time.Millisecond, true)
	}); allocs != 0 {
		t.Fatalf("Record allocates %v/op", allocs)
	}
}

// TestConcurrentRecord hammers one tracker from many goroutines while
// statuses and objective swaps race it — the -race lane's meat.
func TestConcurrentRecord(t *testing.T) {
	clk := &fakeClock{}
	clk.set(t0)
	e := newTestEngine(Config{
		Default:  Objective{Latency: time.Millisecond, LatencyTarget: 0.99, ErrorBudget: 0.01},
		OnBreach: func(string, Status) {},
		Cooldown: time.Nanosecond,
	}, clk)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Record("emg", time.Duration(i)*time.Microsecond, i%7 == 0)
				if i%100 == 0 {
					clk.advance(time.Second)
					e.SetObjective("emg", Objective{Latency: time.Duration(g+1) * time.Millisecond, LatencyTarget: 0.99, ErrorBudget: 0.01})
					_ = e.Status("emg")
					_ = e.StatusAll()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.Status("emg"); st.TotalRequests != goroutines*per {
		t.Fatalf("lost records: %d, want %d", st.TotalRequests, goroutines*per)
	}
}
