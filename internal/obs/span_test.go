package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"pulphd/internal/pulp"
)

// fixedClock returns a now() hook ticking step nanoseconds per call.
func fixedClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

func TestSpansNilSafety(t *testing.T) {
	var s *Spans
	s.Reset(1)
	s.SetParent(3)
	if id := s.Start("x", NoSpan); id != NoSpan {
		t.Fatalf("nil Start = %d, want NoSpan", id)
	}
	s.End(0)
	s.Annotate(0, "k", 1)
	if s.Len() != 0 || s.Dropped() != 0 || s.Parent() != NoSpan {
		t.Fatal("nil recorder reports state")
	}
	var tl *Timelines
	if tl.Acquire(1) != nil {
		t.Fatal("nil Timelines handed out a recorder")
	}
	tl.Release(nil)
	if tl.Requests() != 0 {
		t.Fatal("nil Timelines holds requests")
	}
}

func TestSpansRecordTree(t *testing.T) {
	s := NewSpans(8)
	s.now = fixedClock(100)
	s.Reset(7) // epoch = 100
	root := s.Start("request", NoSpan)
	child := s.Start("encode", root)
	s.Annotate(child, "classes", 5)
	s.Annotate(child, "gen", 2)
	s.Annotate(child, "dropped", 9) // third attr: dropped
	s.End(child)
	s.End(root)

	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got := s.Span(int(child))
	if got.Name != "encode" || got.Parent != root {
		t.Fatalf("child span %+v", got)
	}
	if got.Attrs[0] != (Attr{"classes", 5}) || got.Attrs[1] != (Attr{"gen", 2}) {
		t.Fatalf("attrs %+v (third annotation must be dropped)", got.Attrs)
	}
	if got.Start >= got.End {
		t.Fatalf("span times %d..%d", got.Start, got.End)
	}
	rootSpan := s.Span(int(root))
	if rootSpan.End <= got.End {
		t.Fatal("root ended before its child")
	}
}

func TestSpansDropWhenFull(t *testing.T) {
	s := NewSpans(2)
	a := s.Start("a", NoSpan)
	b := s.Start("b", a)
	c := s.Start("c", b)
	if a == NoSpan || b == NoSpan {
		t.Fatal("capacity-covered spans dropped")
	}
	if c != NoSpan {
		t.Fatalf("overflow span got id %d", c)
	}
	if s.Len() != 2 || s.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2/1", s.Len(), s.Dropped())
	}
	s.End(c) // harmless
	s.Annotate(c, "", 0)
	s.Reset(9)
	if s.Len() != 0 || s.Dropped() != 0 || s.ID != 9 {
		t.Fatal("Reset did not re-arm")
	}
}

// TestSpansChromeTraceGolden pins the exporter byte-for-byte on a
// fixed clock: metadata (process/thread naming), complete slices with
// µs timestamps, parent/attr args, and the shard fan-out track.
func TestSpansChromeTraceGolden(t *testing.T) {
	s := NewSpans(8)
	s.now = fixedClock(2000)                // 2 µs per clock read
	s.Reset(42)                             // epoch = 2000
	root := s.Start("request", NoSpan)      // start 2000
	wait := s.Start("queue.wait", root)     // start 4000
	s.End(wait)                             // end 6000
	sh := s.StartTrack("am.shard", root, 1) // start 8000
	s.Annotate(sh, "shard", 0)
	s.End(sh)   // end 10000
	s.End(root) // end 12000

	tl := NewTimelines(4, 8)
	tl.Release(s)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"request 42"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"request"}},` +
		`{"name":"thread_sort_index","ph":"M","ts":0,"pid":1,"tid":0,"args":{"sort_index":0}},` +
		`{"name":"request","ph":"X","ts":2,"dur":10,"pid":1,"tid":0,"cat":"request","args":{"parent":-1,"span":0}},` +
		`{"name":"queue.wait","ph":"X","ts":4,"dur":2,"pid":1,"tid":0,"cat":"request","args":{"parent":0,"span":1}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"shard fan-out"}},` +
		`{"name":"thread_sort_index","ph":"M","ts":0,"pid":1,"tid":1,"args":{"sort_index":1}},` +
		`{"name":"am.shard","ph":"X","ts":8,"dur":2,"pid":1,"tid":1,"cat":"request","args":{"parent":0,"shard":0,"span":2}}` +
		`],"displayTimeUnit":"ns"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestCombinedChromeTrace renders a cycle trace and request timelines
// into one document: distinct pids, both event families present, and
// the result stays valid JSON.
func TestCombinedChromeTrace(t *testing.T) {
	tr := NewTrace()
	tr.RecordKernel("SimPlat", 4, pulp.KernelResult{Name: "AM", ComputeCycles: 1000, SerialCycles: 100})
	s := NewSpans(4)
	s.now = fixedClock(1000)
	s.Reset(1)
	id := s.Start("request", NoSpan)
	s.End(id)
	tl := NewTimelines(2, 4)
	tl.Release(s)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, tl, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	var sawKernel, sawRequest bool
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		if strings.Contains(ev.Name, "request") {
			sawRequest = true
		}
	}
	if !strings.Contains(buf.String(), "SimPlat") {
		t.Error("combined trace lacks the simulator platform")
	} else {
		sawKernel = true
	}
	if !sawKernel || !sawRequest {
		t.Fatalf("combined trace missing a part (kernel=%v request=%v)", sawKernel, sawRequest)
	}
	if len(pids) < 2 {
		t.Fatalf("parts share a pid: %v", pids)
	}
}

func TestTimelinesRingRecycles(t *testing.T) {
	tl := NewTimelines(2, 4)
	var first *Spans
	for i := uint64(1); i <= 5; i++ {
		s := tl.Acquire(i)
		if i == 1 {
			first = s
		}
		s.Start("r", NoSpan)
		tl.Release(s)
	}
	if tl.Requests() != 2 {
		t.Fatalf("ring holds %d, want 2", tl.Requests())
	}
	held := tl.snapshot()
	if held[0].ID != 4 || held[1].ID != 5 {
		t.Fatalf("ring holds ids %d,%d; want oldest-first 4,5", held[0].ID, held[1].ID)
	}
	// The recorder evicted first (request 1's) must have been recycled
	// by a later Acquire instead of thrown away: it is the one that
	// came back for request 4, sitting in the ring now.
	if held[0] != first {
		t.Error("evicted recorder was never recycled")
	}
	if held[0].Len() != 1 {
		t.Fatalf("recycled recorder kept %d spans across Reset", held[0].Len())
	}
}

// TestTimelinesRecycleDistinct pins the recycle discipline a serving
// path with handler/dispatcher recorder handoff depends on: a recorder
// is never simultaneously live in two places — every Acquire hands out
// a recorder distinct from every other outstanding one and from every
// recorder held in the done ring.
func TestTimelinesRecycleDistinct(t *testing.T) {
	tl := NewTimelines(3, 4)
	live := map[*Spans]bool{}
	var out []*Spans
	for i := uint64(1); i <= 6; i++ {
		s := tl.Acquire(i)
		if live[s] {
			t.Fatalf("Acquire(%d) returned a recorder already outstanding", i)
		}
		live[s] = true
		out = append(out, s)
	}
	for _, s := range out {
		tl.Release(s)
	}
	// 6 released into keep=3: 3 in the ring, 3 recycled to the free
	// list. Re-acquiring must hand back only free-list recorders, never
	// one the ring still exports.
	held := map[*Spans]bool{}
	for _, s := range tl.snapshot() {
		held[s] = true
	}
	for i := uint64(10); i < 13; i++ {
		s := tl.Acquire(i)
		if held[s] {
			t.Fatalf("Acquire(%d) returned a recorder still held in the done ring", i)
		}
	}
}

// TestSpansConcurrentStart hammers slot reservation from many
// goroutines: every non-dropped id is unique and the drop accounting
// adds up.
func TestSpansConcurrentStart(t *testing.T) {
	const goroutines, each = 8, 50
	s := NewSpans(100) // less than goroutines*each: forces drops
	var wg sync.WaitGroup
	ids := make([][]SpanID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := s.StartTrack("s", NoSpan, int32(g))
				if id != NoSpan {
					s.Annotate(id, "i", int64(i))
					s.End(id)
					ids[g] = append(ids[g], id)
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[SpanID]bool{}
	total := 0
	for _, list := range ids {
		for _, id := range list {
			if seen[id] {
				t.Fatalf("span id %d handed out twice", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != s.Len() {
		t.Fatalf("recorded %d spans, Len() = %d", total, s.Len())
	}
	if s.Len()+s.Dropped() != goroutines*each {
		t.Fatalf("Len+Dropped = %d, want %d", s.Len()+s.Dropped(), goroutines*each)
	}
}
