package obs

import (
	"sort"
	"sync"
	"time"
)

// This file is the per-tenant half of the serving observability: the
// model registry serves many named models from one process, so its
// gauges and counters need a `model` label dimension. GaugeVec is the
// one-label gauge family (CounterVec in drift.go is the two-label
// counter family); RegistryMetrics bundles everything the registry
// records, nil-safe like every other domain bundle in domains.go.

// GaugeVec is a family of gauges distinguished by one label value —
// per-model generation, class count, resident bytes. Cell lookup takes
// a lock (registry operations, not hot-path predicts, touch it); the
// returned *Gauge is the usual lock-free atomic.
type GaugeVec struct {
	mu    sync.RWMutex
	name  string
	cells map[string]*Gauge
}

// NewGaugeVec returns an empty family with the given label name.
func NewGaugeVec(label string) *GaugeVec {
	return &GaugeVec{name: label, cells: map[string]*Gauge{}}
}

// LabelName returns the label name.
func (v *GaugeVec) LabelName() string { return v.name }

// With returns the gauge for the label value, creating it on first
// use. Nil-safe: a nil family hands back a nil (no-op) gauge.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.cells[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.cells[value]; g == nil {
		g = &Gauge{}
		v.cells[value] = g
	}
	return g
}

// Delete drops the cell for the label value, so a deleted model stops
// exporting. A no-op on nil families and absent cells.
func (v *GaugeVec) Delete(value string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	delete(v.cells, value)
	v.mu.Unlock()
}

// GaugeCell is one exported cell of a GaugeVec.
type GaugeCell struct {
	Value string
	Gauge int64
}

// Snapshot returns every cell sorted by label value, for export.
func (v *GaugeVec) Snapshot() []GaugeCell {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := make([]GaugeCell, 0, len(v.cells))
	for value, g := range v.cells {
		out = append(out, GaugeCell{Value: value, Gauge: g.Value()})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// DeleteCells drops the cells for the label pair values whose first
// label equals value — how a deleted model's per-op request counters
// leave the exposition. A no-op on nil families.
func (v *CounterVec) DeleteCells(value string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	for key := range v.cells {
		if key[0] == value {
			delete(v.cells, key)
		}
	}
	v.mu.Unlock()
}

// RegistryMetrics instruments the multi-tenant model registry: the
// fleet gauges (how many models, how many resident, total resident
// bytes), the durability counters (WAL appends/replays, snapshots,
// evictions, fault-ins), and the per-model families exported with a
// `model` label.
type RegistryMetrics struct {
	// Models counts registered models; ResidentModels the subset
	// currently in memory; ResidentBytes their summed footprint.
	Models         Gauge
	ResidentModels Gauge
	ResidentBytes  Gauge
	// Evictions counts models written out and dropped under the
	// resident-bytes budget; FaultIns counts cold models loaded back on
	// first request (including recovery loads at first use).
	Evictions Counter
	FaultIns  Counter
	// WALAppends counts records logged; WALReplayed counts records
	// replayed onto snapshots during fault-in/recovery; Snapshots
	// counts per-model snapshot writes; SnapshotNanos their latency.
	WALAppends    Counter
	WALReplayed   Counter
	Snapshots     Counter
	SnapshotNanos Histogram
	// WALFsyncNanos times the fsync after each durable WAL append
	// (exported seconds-scaled as pulphd_registry_wal_fsync_seconds);
	// FaultInNanos times whole cold-model loads, snapshot read plus WAL
	// replay (exported as pulphd_registry_faultin_seconds).
	WALFsyncNanos Histogram
	FaultInNanos  Histogram
	// Per-model families, labelled by model name.
	Generation         *GaugeVec
	Classes            *GaugeVec
	ModelResidentBytes *GaugeVec
	ModelWALRecords    *GaugeVec
	RollingAccuracy    *GaugeVec
	// ModelRequests counts registry operations by (model, op) where op
	// is predict, learn, correct, create, delete, evict or fault_in.
	ModelRequests *CounterVec
}

// NewRegistryMetrics builds the bundle with its labelled families
// allocated (the zero value's nil families are valid but record
// nothing per-model).
func NewRegistryMetrics() *RegistryMetrics {
	return &RegistryMetrics{
		Generation:         NewGaugeVec("model"),
		Classes:            NewGaugeVec("model"),
		ModelResidentBytes: NewGaugeVec("model"),
		ModelWALRecords:    NewGaugeVec("model"),
		RollingAccuracy:    NewGaugeVec("model"),
		ModelRequests:      NewCounterVec("model", "op"),
	}
}

// RecordOp counts one registry operation against a named model.
func (m *RegistryMetrics) RecordOp(model, op string) {
	if m == nil {
		return
	}
	m.ModelRequests.With(model, op).Inc()
}

// RecordModelState updates one model's published-state gauges.
func (m *RegistryMetrics) RecordModelState(model string, generation uint64, classes, residentBytes, walRecords int) {
	if m == nil {
		return
	}
	m.Generation.With(model).Set(int64(generation))
	m.Classes.With(model).Set(int64(classes))
	m.ModelResidentBytes.With(model).Set(int64(residentBytes))
	m.ModelWALRecords.With(model).Set(int64(walRecords))
}

// RecordFleet updates the registry-wide gauges.
func (m *RegistryMetrics) RecordFleet(models, resident int, residentBytes int64) {
	if m == nil {
		return
	}
	m.Models.Set(int64(models))
	m.ResidentModels.Set(int64(resident))
	m.ResidentBytes.Set(residentBytes)
}

// RecordWALAppend counts one logged record.
func (m *RegistryMetrics) RecordWALAppend() {
	if m == nil {
		return
	}
	m.WALAppends.Inc()
}

// RecordSnapshot folds one per-model snapshot write.
func (m *RegistryMetrics) RecordSnapshot(d time.Duration) {
	if m == nil {
		return
	}
	m.Snapshots.Inc()
	m.SnapshotNanos.Observe(d)
}

// RecordEviction counts one model evicted to disk.
func (m *RegistryMetrics) RecordEviction() {
	if m == nil {
		return
	}
	m.Evictions.Inc()
}

// RecordFaultIn folds one cold-model load that replayed n WAL records
// and took d end to end (snapshot read + replay + publish).
func (m *RegistryMetrics) RecordFaultIn(replayed int, d time.Duration) {
	if m == nil {
		return
	}
	m.FaultIns.Inc()
	m.WALReplayed.Add(int64(replayed))
	m.FaultInNanos.Observe(d)
}

// RecordWALFsync times one fsync on the durable WAL append path.
func (m *RegistryMetrics) RecordWALFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.WALFsyncNanos.Observe(d)
}

// RecordRollingAccuracy updates one model's drift gauge (permille; -1
// means no feedback signal yet).
func (m *RegistryMetrics) RecordRollingAccuracy(model string, permille int64) {
	if m == nil {
		return
	}
	m.RollingAccuracy.With(model).Set(permille)
}

// ForgetModel drops every per-model cell for a deleted model.
func (m *RegistryMetrics) ForgetModel(model string) {
	if m == nil {
		return
	}
	m.Generation.Delete(model)
	m.Classes.Delete(model)
	m.ModelResidentBytes.Delete(model)
	m.ModelWALRecords.Delete(model)
	m.RollingAccuracy.Delete(model)
	m.ModelRequests.DeleteCells(model)
}
