package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: a
// span recorder that rides a context.Context through the serving path
// (HTTP handler → queue wait → batch formation → per-shard AM search
// → generation swap), a bounded ring of completed request timelines,
// and a Chrome trace-event exporter that renders those timelines —
// alone or side by side with the simulator cycle Trace — in one
// Perfetto view.
//
// The recorder is built for the serving hot path: Start reserves a
// slot with one atomic add and writes it without locks (each span is
// written only by the goroutine that started it), End and Annotate
// touch only that slot, and a full recorder drops spans instead of
// growing. Every method is nil-safe, so instrumented code pays one
// pointer compare when request tracing is disabled and allocates
// nothing either way.

// SpanID identifies one span within a Spans recorder.
type SpanID int32

// NoSpan is the parent of root spans and the id handed out by a nil
// or full recorder; every Spans method accepts it and no-ops.
const NoSpan SpanID = -1

// spanAttrs is the fixed number of attribute slots per span. Fixed
// size keeps Annotate allocation-free.
const spanAttrs = 2

// Attr is one span attribute. Values are int64 — the serving path
// annotates sizes, shard indices and generation ids, never strings.
type Attr struct {
	Key   string
	Value int64
}

// Span is one recorded interval. Start and End are nanoseconds since
// the recorder's epoch; End == 0 marks a span never ended. Track is
// the timeline row the exporter places the span on: 0 is the request's
// main track, per-shard searches use 1+shard so concurrent shard scans
// render side by side instead of as a broken nesting.
type Span struct {
	Name   string
	Parent SpanID
	Track  int32
	Start  int64
	End    int64
	Attrs  [spanAttrs]Attr
}

// Spans records one request's span tree into a fixed-capacity slot
// array. One goroutine starts the root; any number of goroutines may
// Start/End concurrently (slot reservation is a single atomic add).
// The zero value is unusable — build recorders with NewSpans or
// borrow them from a Timelines ring.
type Spans struct {
	// ID tags the recorder with the request id it traces.
	ID uint64
	// Model tags the recorder with the tenant model the request
	// resolved to ("" when the server runs without a registry). Set it
	// once, before any concurrent span writers start; exporters use it
	// for per-tenant (?model=) filtering and process labels.
	Model string

	epoch   int64 // unix nanos at Reset
	n       atomic.Int32
	dropped atomic.Int32
	spans   []Span
	parent  SpanID       // subtree attachment point, see SetParent
	now     func() int64 // unix-nano clock, swappable in tests
}

// NewSpans returns a recorder with capacity for cap spans.
func NewSpans(cap int) *Spans {
	if cap < 1 {
		cap = 1
	}
	s := &Spans{spans: make([]Span, cap), now: func() int64 { return time.Now().UnixNano() }}
	s.Reset(0)
	return s
}

// Reset re-arms the recorder for a new request: clears every recorded
// span, restarts the epoch, and tags the recorder with id.
func (s *Spans) Reset(id uint64) {
	if s == nil {
		return
	}
	n := int(s.n.Load())
	if n > len(s.spans) {
		n = len(s.spans)
	}
	for i := 0; i < n; i++ {
		s.spans[i] = Span{}
	}
	s.n.Store(0)
	s.dropped.Store(0)
	s.ID = id
	s.Model = ""
	s.parent = NoSpan
	s.epoch = s.now()
}

// SetParent stages the span that subtrees started by downstream layers
// attach under. The serving path hands a request from handler to
// dispatcher to model sequentially, so each stage sets the attachment
// point before calling into the next; only the goroutine currently
// driving the request may call it.
func (s *Spans) SetParent(id SpanID) {
	if s == nil {
		return
	}
	s.parent = id
}

// Parent returns the staged attachment point (NoSpan by default, and
// for a nil recorder).
func (s *Spans) Parent() SpanID {
	if s == nil {
		return NoSpan
	}
	return s.parent
}

// Start opens a span under parent (NoSpan for a root) on the request's
// main track. It never blocks and never allocates; when the recorder
// is full the span is dropped and NoSpan returned.
func (s *Spans) Start(name string, parent SpanID) SpanID {
	return s.StartTrack(name, parent, 0)
}

// StartTrack is Start on an explicit exporter track — per-shard
// searches use 1+shard so concurrent scans get their own rows.
func (s *Spans) StartTrack(name string, parent SpanID, track int32) SpanID {
	if s == nil {
		return NoSpan
	}
	idx := s.n.Add(1) - 1
	if int(idx) >= len(s.spans) {
		s.dropped.Add(1)
		return NoSpan
	}
	sp := &s.spans[idx]
	sp.Name = name
	sp.Parent = parent
	sp.Track = track
	sp.Start = s.now() - s.epoch
	sp.End = 0
	sp.Attrs = [spanAttrs]Attr{}
	return SpanID(idx)
}

// End closes the span. Ending NoSpan (or a span twice) is harmless.
func (s *Spans) End(id SpanID) {
	if s == nil || id < 0 || int(id) >= len(s.spans) {
		return
	}
	s.spans[id].End = s.now() - s.epoch
}

// Annotate attaches key=value to the span, filling the first free
// attribute slot; further annotations on a full span are dropped.
func (s *Spans) Annotate(id SpanID, key string, value int64) {
	if s == nil || id < 0 || int(id) >= len(s.spans) {
		return
	}
	for i := range s.spans[id].Attrs {
		if s.spans[id].Attrs[i].Key == "" {
			s.spans[id].Attrs[i] = Attr{Key: key, Value: value}
			return
		}
	}
}

// Len returns the number of recorded (non-dropped) spans.
func (s *Spans) Len() int {
	if s == nil {
		return 0
	}
	n := int(s.n.Load())
	if n > len(s.spans) {
		n = len(s.spans)
	}
	return n
}

// Dropped returns how many spans did not fit the recorder.
func (s *Spans) Dropped() int {
	if s == nil {
		return 0
	}
	return int(s.dropped.Load())
}

// Span returns a copy of recorded span i (0 ≤ i < Len()).
func (s *Spans) Span(i int) Span { return s.spans[i] }

// spansKey carries a *Spans through a context.Context.
type spansKey struct{}

// WithSpans returns a context carrying the recorder; instrumented
// layers below retrieve it with SpansFrom.
func WithSpans(ctx context.Context, s *Spans) context.Context {
	return context.WithValue(ctx, spansKey{}, s)
}

// SpansFrom returns the recorder carried by ctx, or nil when request
// tracing is disabled — every Spans method accepts the nil.
func SpansFrom(ctx context.Context) *Spans {
	s, _ := ctx.Value(spansKey{}).(*Spans)
	return s
}

// Timelines keeps the most recent completed request recorders in a
// bounded ring for export, and recycles evicted recorders so a steady
// request stream reuses a fixed set of Spans instead of allocating.
type Timelines struct {
	mu      sync.Mutex
	keep    int
	spanCap int
	done    []*Spans // ring, oldest first once full
	next    int
	free    []*Spans
}

// NewTimelines returns a ring keeping the last keep requests, each
// with capacity for spanCap spans.
func NewTimelines(keep, spanCap int) *Timelines {
	if keep < 1 {
		keep = 1
	}
	if spanCap < 1 {
		spanCap = 1
	}
	return &Timelines{keep: keep, spanCap: spanCap}
}

// Acquire returns a reset recorder tagged with id — recycled from an
// evicted one when available. A nil Timelines returns nil, which
// disables recording down the whole path.
func (t *Timelines) Acquire(id uint64) *Spans {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var s *Spans
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free = t.free[:n-1]
	}
	t.mu.Unlock()
	if s == nil {
		s = NewSpans(t.spanCap)
	}
	s.Reset(id)
	return s
}

// Release files a completed recorder into the ring, evicting (and
// recycling) the oldest once keep are held. The caller must be done
// writing spans: from here the recorder may be read by an exporter at
// any time.
func (t *Timelines) Release(s *Spans) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if len(t.done) < t.keep {
		t.done = append(t.done, s)
	} else {
		t.free = append(t.free, t.done[t.next])
		t.done[t.next] = s
		t.next = (t.next + 1) % t.keep
	}
	t.mu.Unlock()
}

// Requests returns how many completed request timelines are held.
func (t *Timelines) Requests() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// snapshotLocked returns the held recorders oldest-first.
func (t *Timelines) snapshot() []*Spans {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Spans, 0, len(t.done))
	for i := 0; i < len(t.done); i++ {
		out = append(out, t.done[(t.next+i)%len(t.done)])
	}
	return out
}

// tracePart is an event source composable into one Chrome trace file.
// Both the simulator cycle Trace and the request Timelines implement
// it; pid is the first free process id and the next free one is
// returned.
type tracePart interface {
	appendTraceEvents(evs []traceEvent, pid int) ([]traceEvent, int)
}

// appendTraceEvents renders every held request as one trace process
// ("request <id>"), its spans as complete slices: track 0 carries the
// request's own tree, higher tracks the per-shard fan-out. Span
// timestamps are nanoseconds; the trace-event unit is microseconds, so
// durations render in µs (the simulator's cycle traces map one cycle
// to one µs — the shared timeline is for shape, not unit algebra).
func (t *Timelines) appendTraceEvents(evs []traceEvent, pid int) ([]traceEvent, int) {
	for _, rec := range t.snapshot() {
		evs = appendSpanEvents(evs, rec, pid)
		pid++
	}
	return evs, pid
}

// appendSpanEvents renders one recorder as one trace process.
func appendSpanEvents(evs []traceEvent, rec *Spans, pid int) []traceEvent {
	name := requestProcessName(rec.ID)
	if rec.Model != "" {
		name += " · " + rec.Model
	}
	evs = append(evs, traceEvent{
		Name: "process_name", Phase: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
	tracks := map[int32]bool{}
	for i := 0; i < rec.Len(); i++ {
		sp := rec.Span(i)
		if !tracks[sp.Track] {
			tracks[sp.Track] = true
			name := "request"
			if sp.Track > 0 {
				name = "shard fan-out"
			}
			evs = append(evs, traceEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: int(sp.Track),
				Args: map[string]any{"name": name},
			}, traceEvent{
				Name: "thread_sort_index", Phase: "M", Pid: pid, Tid: int(sp.Track),
				Args: map[string]any{"sort_index": int(sp.Track)},
			})
		}
		end := sp.End
		if end < sp.Start {
			end = sp.Start // never-ended span: zero-length slice
		}
		args := map[string]any{"span": i, "parent": int(sp.Parent)}
		for _, a := range sp.Attrs {
			if a.Key != "" {
				args[a.Key] = a.Value
			}
		}
		dur := (end - sp.Start) / 1e3
		if dur < 1 {
			dur = 1 // sub-µs spans still visible
		}
		evs = append(evs, traceEvent{
			Name: sp.Name, Phase: "X", Ts: sp.Start / 1e3, Dur: dur,
			Pid: pid, Tid: int(sp.Track), Cat: "request", Args: args,
		})
	}
	return evs
}

// requestProcessName formats the per-request process label without
// importing fmt on the export path's behalf (it is cold anyway).
func requestProcessName(id uint64) string {
	digits := [20]byte{}
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + id%10)
		id /= 10
		if id == 0 {
			break
		}
	}
	return "request " + string(digits[i:])
}

// WriteChromeTrace renders the held request timelines as Chrome
// trace-event JSON.
func (t *Timelines) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t)
}

// WriteChromeTraceModel is WriteChromeTrace restricted to requests
// whose recorder is tagged with the given model — the ?model= filter
// of /debug/spans. An empty model renders every held timeline.
func (t *Timelines) WriteChromeTraceModel(w io.Writer, model string) error {
	if model == "" {
		return t.WriteChromeTrace(w)
	}
	return WriteChromeTrace(w, modelFiltered{t: t, model: model})
}

// modelFiltered is a tracePart view of a Timelines scoped to one model.
type modelFiltered struct {
	t     *Timelines
	model string
}

func (f modelFiltered) appendTraceEvents(evs []traceEvent, pid int) ([]traceEvent, int) {
	for _, rec := range f.t.snapshot() {
		if rec.Model != f.model {
			continue
		}
		evs = appendSpanEvents(evs, rec, pid)
		pid++
	}
	return evs, pid
}

// appendTraceEvents makes the cycle Trace composable with request
// timelines (implements tracePart).
func (t *Trace) appendTraceEvents(evs []traceEvent, pid int) ([]traceEvent, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendEventsLocked(evs, pid)
}

// WriteChromeTrace renders any mix of cycle traces and request
// timelines into a single Chrome trace-event JSON document — load it
// in ui.perfetto.dev to see simulated kernel chains and serving
// request trees side by side. Process ids are assigned in argument
// order.
func WriteChromeTrace(w io.Writer, parts ...tracePart) error {
	var evs []traceEvent
	pid := 1
	for _, p := range parts {
		if p == nil {
			continue
		}
		evs, pid = p.appendTraceEvents(evs, pid)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}
