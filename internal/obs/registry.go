package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry binds named metrics for export. Registration is for setup
// time (it takes a lock and may allocate); reads happen on the export
// path only, so instrumented hot paths never touch the registry.
type Registry struct {
	mu            sync.Mutex
	counters      []namedCounter
	gauges        []namedGauge
	gaugeFuncs    []namedGaugeFunc
	vecs          []namedCounterVec
	gaugeVecs     []namedGaugeVec
	gaugeVecFuncs []namedGaugeVecFunc
	hists         []namedHistogram
	secondsHists  []namedHistogram
	names         map[string]bool
}

type namedCounter struct {
	name, help string
	c          *Counter
}

type namedGauge struct {
	name, help string
	g          *Gauge
}

type namedGaugeFunc struct {
	name, help string
	fn         func() int64
}

type namedCounterVec struct {
	name, help string
	v          *CounterVec
}

type namedGaugeVec struct {
	name, help string
	v          *GaugeVec
}

type namedHistogram struct {
	name, help string
	h          *Histogram
}

type namedGaugeVecFunc struct {
	name, help, label string
	fn                func() []GaugeCell
}

// escapeHelp escapes a HELP string for the Prometheus text exposition
// format (version 0.0.4): backslashes and line feeds.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes a label value: backslashes, double quotes and
// line feeds.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) claim(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
}

// RegisterCounter exposes c under name (Prometheus convention:
// snake_case with a _total suffix for counters).
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.counters = append(r.counters, namedCounter{name, help, c})
}

// RegisterGauge exposes g under name (Prometheus convention: no
// _total suffix; gauges move both ways).
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.gauges = append(r.gauges, namedGauge{name, help, g})
}

// RegisterGaugeFunc exposes fn as a gauge sampled at scrape time —
// the hook the runtime/metrics collector and the drift monitor hang
// their derived values on. fn must be safe for concurrent calls.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.gaugeFuncs = append(r.gaugeFuncs, namedGaugeFunc{name, help, fn})
}

// RegisterCounterVec exposes the labelled counter family v under name.
func (r *Registry) RegisterCounterVec(name, help string, v *CounterVec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.vecs = append(r.vecs, namedCounterVec{name, help, v})
}

// RegisterGaugeVec exposes the labelled gauge family v under name —
// the per-model series of the model registry.
func (r *Registry) RegisterGaugeVec(name, help string, v *GaugeVec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.gaugeVecs = append(r.gaugeVecs, namedGaugeVec{name, help, v})
}

// RegisterGaugeVecFunc exposes a labelled gauge family computed at
// scrape time — the hook the SLO engine's burn-rate families hang on.
// fn must be safe for concurrent calls; cells carry int64 values, so
// ratios are exported in milli/permille encodings.
func (r *Registry) RegisterGaugeVecFunc(name, help, label string, fn func() []GaugeCell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.gaugeVecFuncs = append(r.gaugeVecFuncs, namedGaugeVecFunc{name, help, label, fn})
}

// RegisterHistogram exposes h under name; bucket bounds are exported
// in nanoseconds (suffix the name _ns to keep the unit visible).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.hists = append(r.hists, namedHistogram{name, help, h})
}

// RegisterSecondsHistogram exposes h — which observes durations in
// nanoseconds like every obs.Histogram — with bucket bounds and sum
// scaled to seconds on export, so Prometheus-convention `_seconds`
// names carry their conventional unit.
func (r *Registry) RegisterSecondsHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.secondsHists = append(r.secondsHists, namedHistogram{name, help, h})
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). HELP text and label values
// are escaped per the format, so arbitrary class labels (quotes,
// backslashes, line feeds) survive a parser round trip.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	writeHelp := func(name, help string) error {
		if help == "" {
			return nil
		}
		_, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
		return err
	}
	for _, c := range r.counters {
		if err := writeHelp(c.name, c.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.c.Value()); err != nil {
			return err
		}
	}
	for _, v := range r.vecs {
		if err := writeHelp(v.name, v.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", v.name); err != nil {
			return err
		}
		k1, k2 := v.v.LabelNames()
		for _, s := range v.v.Snapshot() {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\",%s=\"%s\"} %d\n",
				v.name, k1, escapeLabel(s.Values[0]), k2, escapeLabel(s.Values[1]), s.Count); err != nil {
				return err
			}
		}
	}
	for _, g := range r.gauges {
		if err := writeHelp(g.name, g.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.g.Value()); err != nil {
			return err
		}
	}
	for _, g := range r.gaugeFuncs {
		if err := writeHelp(g.name, g.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.fn()); err != nil {
			return err
		}
	}
	for _, v := range r.gaugeVecs {
		if err := writeHelp(v.name, v.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", v.name); err != nil {
			return err
		}
		label := v.v.LabelName()
		for _, s := range v.v.Snapshot() {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n",
				v.name, label, escapeLabel(s.Value), s.Gauge); err != nil {
				return err
			}
		}
	}
	for _, v := range r.gaugeVecFuncs {
		if err := writeHelp(v.name, v.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", v.name); err != nil {
			return err
		}
		for _, s := range v.fn() {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n",
				v.name, v.label, escapeLabel(s.Value), s.Gauge); err != nil {
				return err
			}
		}
	}
	for _, h := range r.hists {
		if err := writeHelp(h.name, h.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
			return err
		}
		s := h.h.Snapshot()
		cum := int64(0)
		for i, n := range s.Counts {
			cum += n
			le := "+Inf"
			if b := s.BucketBound(i); b >= 0 {
				le = fmt.Sprintf("%d", b+1)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", h.name, s.SumNs, h.name, s.Count); err != nil {
			return err
		}
	}
	for _, h := range r.secondsHists {
		if err := writeHelp(h.name, h.help); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
			return err
		}
		s := h.h.Snapshot()
		cum := int64(0)
		for i, n := range s.Counts {
			cum += n
			le := "+Inf"
			if b := s.BucketBound(i); b >= 0 {
				le = strconv.FormatFloat(float64(b+1)/1e9, 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			h.name, strconv.FormatFloat(float64(s.SumNs)/1e9, 'g', -1, 64), h.name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the registry state as a plain map, the expvar
// payload.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.vecs)+len(r.hists))
	for _, c := range r.counters {
		out[c.name] = c.c.Value()
	}
	for _, g := range r.gauges {
		out[g.name] = g.g.Value()
	}
	for _, g := range r.gaugeFuncs {
		out[g.name] = g.fn()
	}
	for _, v := range r.vecs {
		cells := map[string]int64{}
		for _, s := range v.v.Snapshot() {
			cells[s.Values[0]+"/"+s.Values[1]] = s.Count
		}
		out[v.name] = cells
	}
	for _, v := range r.gaugeVecs {
		cells := map[string]int64{}
		for _, s := range v.v.Snapshot() {
			cells[s.Value] = s.Gauge
		}
		out[v.name] = cells
	}
	for _, v := range r.gaugeVecFuncs {
		cells := map[string]int64{}
		for _, s := range v.fn() {
			cells[s.Value] = s.Gauge
		}
		out[v.name] = cells
	}
	for _, hs := range [][]namedHistogram{r.hists, r.secondsHists} {
		for _, h := range hs {
			s := h.h.Snapshot()
			out[h.name] = map[string]any{
				"count":   s.Count,
				"sum_ns":  s.SumNs,
				"mean_ns": s.Mean(),
			}
		}
	}
	return out
}

// PublishExpvar publishes the registry under the given expvar name.
// Safe to call more than once (expvar forbids re-publishing a name;
// subsequent calls are no-ops).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// PrometheusContentType is the exposition-format media type scrapers
// content-negotiate on (text format, version 0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = r.WritePrometheus(w)
	})
}

// Names returns every registered metric name, sorted. It exists for
// coverage tooling — the operations-handbook test diffs this list
// against docs/OPERATIONS.md so no metric family ships undocumented.
func (r *Registry) Names() []string { return r.sortedNames() }

// sortedNames returns every registered metric name, for tests.
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.names))
	for n := range r.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HostMetrics bundles one metrics instance per instrumented host
// package, registered under the canonical pulphd_* names (documented
// in DESIGN.md §8). Wire it with hdc.SetMetrics(h.Inference),
// hdc.SetServingMetrics(h.Serving), stream.SetMetrics(h.Stream) and
// parallel.SetMetrics(h.Pool).
type HostMetrics struct {
	Inference *InferenceMetrics
	Serving   *ServingMetrics
	Stream    *StreamMetrics
	Pool      *PoolMetrics
	Fault     *FaultMetrics
	// Models is the multi-tenant model-registry bundle (fleet gauges
	// plus the per-model pulphd_model_* families); hand it to
	// registry.Config.Metrics.
	Models   *RegistryMetrics
	Registry *Registry
}

// NewHostMetrics builds the full host metric set.
func NewHostMetrics() *HostMetrics {
	h := &HostMetrics{
		Inference: &InferenceMetrics{},
		Serving:   &ServingMetrics{},
		Stream:    &StreamMetrics{Drift: NewDriftMonitor()},
		Pool:      &PoolMetrics{},
		Fault:     &FaultMetrics{},
		Models:    NewRegistryMetrics(),
		Registry:  NewRegistry(),
	}
	h.Serving.BatchSizes.SetBase(1)
	r := h.Registry
	r.RegisterCounter("pulphd_predict_total", "Predict calls", &h.Inference.Predicts)
	r.RegisterHistogram("pulphd_predict_latency_ns", "Predict latency in nanoseconds", &h.Inference.PredictNanos)
	r.RegisterCounter("pulphd_predict_batch_total", "PredictBatch calls", &h.Inference.BatchCalls)
	r.RegisterCounter("pulphd_predict_batch_windows_total", "windows classified by PredictBatch", &h.Inference.BatchWindows)
	r.RegisterHistogram("pulphd_predict_batch_latency_ns", "PredictBatch call latency in nanoseconds", &h.Inference.BatchNanos)
	r.RegisterCounter("pulphd_predict_batch_serial_fallbacks_total", "PredictBatch calls that ran serially (nil pool)", &h.Inference.BatchSerialFallbacks)
	r.RegisterCounter("pulphd_stream_samples_total", "samples pushed into stream classifiers", &h.Stream.Samples)
	r.RegisterCounter("pulphd_stream_decisions_total", "decisions emitted by stream classifiers", &h.Stream.Decisions)
	r.RegisterCounter("pulphd_stream_replays_total", "Replay calls", &h.Stream.Replays)
	r.RegisterHistogram("pulphd_stream_replay_latency_ns", "Replay call latency in nanoseconds", &h.Stream.ReplayNanos)
	r.RegisterCounter("pulphd_stream_corrections_total", "label-corrected windows learned online", &h.Stream.Corrections)
	r.RegisterCounterVec("pulphd_stream_confusion_total", "corrected decisions by (predicted, actual) label", h.Stream.Drift.Confusion())
	r.RegisterGaugeFunc("pulphd_stream_feedback_total", "corrected decisions observed by the drift monitor", h.Stream.Drift.Feedbacks)
	r.RegisterGaugeFunc("pulphd_stream_feedback_mismatches", "corrected decisions whose prediction was wrong", h.Stream.Drift.Mismatches)
	r.RegisterGaugeFunc("pulphd_stream_rolling_accuracy_permille", "agreement rate over the last 256 corrections, in 1/1000 (-1: no signal yet)", h.Stream.Drift.RollingAccuracyPermille)
	r.RegisterHistogram("pulphd_predict_encode_latency_ns", "per-request window-encode stage latency in nanoseconds", &h.Inference.EncodeNanos)
	r.RegisterHistogram("pulphd_predict_search_latency_ns", "per-request AM-search stage latency in nanoseconds", &h.Inference.SearchNanos)
	r.RegisterCounter("pulphd_serving_learns_total", "generation publications by Learn/Retrain", &h.Serving.Learns)
	r.RegisterHistogram("pulphd_serving_learn_latency_ns", "Learn/Retrain publish latency in nanoseconds", &h.Serving.LearnNanos)
	r.RegisterGauge("pulphd_serving_generation", "id of the published model generation", &h.Serving.Generation)
	r.RegisterGauge("pulphd_serving_classes", "classes in the published generation", &h.Serving.Classes)
	r.RegisterGauge("pulphd_serving_shards", "associative-memory shards in the published generation", &h.Serving.Shards)
	r.RegisterCounter("pulphd_serving_requests_total", "/predict requests accepted into the queue", &h.Serving.Requests)
	r.RegisterCounter("pulphd_serving_rejected_total", "/predict requests rejected by backpressure (429)", &h.Serving.Rejected)
	r.RegisterCounter("pulphd_serving_batches_total", "request batches drained by the serving dispatcher", &h.Serving.Batches)
	r.RegisterCounter("pulphd_serving_batch_requests_total", "requests served through dispatcher batches", &h.Serving.BatchRequests)
	r.RegisterHistogram("pulphd_serving_queue_wait_ns", "predict queue residency before dispatch in nanoseconds", &h.Serving.QueueWaitNanos)
	r.RegisterHistogram("pulphd_serving_batch_size", "dispatcher drain sizes (requests per batch; powers-of-two buckets)", &h.Serving.BatchSizes)
	r.RegisterCounter("pulphd_serving_timeouts_total", "/predict requests answered 504 at their deadline", &h.Serving.Timeouts)
	r.RegisterCounter("pulphd_serving_retries_total", "dispatcher predict attempts retried after a recovered failure", &h.Serving.Retries)
	r.RegisterCounter("pulphd_serving_panics_recovered_total", "worker/dispatcher panics converted into error responses", &h.Serving.PanicsRecovered)
	r.RegisterCounter("pulphd_serving_degraded_scans_total", "predicts that fell back to the flat AM scan after a shard failure", &h.Serving.DegradedScans)
	r.RegisterGauge("pulphd_serving_model_resident_bytes", "resident footprint of the published model (IM + CIM + AM prototypes) in bytes", &h.Serving.ModelBytes)
	r.RegisterCounter("pulphd_stream_predict_failures_total", "stream decisions dropped because prediction panicked", &h.Stream.PredictFailures)
	r.RegisterCounter("pulphd_fault_injections_total", "fault-injection corruption calls with BER > 0", &h.Fault.Injections)
	r.RegisterCounter("pulphd_fault_flipped_bits_total", "bits flipped by fault injection", &h.Fault.FlippedBits)
	r.RegisterCounter("pulphd_pool_collectives_total", "worker-pool collective calls", &h.Pool.Collectives)
	r.RegisterCounter("pulphd_pool_tasks_total", "chunks run by pool collectives (incl. the caller's)", &h.Pool.Tasks)
	r.RegisterCounter("pulphd_pool_task_slots_total", "chunks pool collectives could have run (pool width); tasks/slots = utilization", &h.Pool.Slots)
	r.RegisterCounter("pulphd_pool_serial_fallbacks_total", "collectives that ran entirely on the caller", &h.Pool.SerialFallbacks)
	r.RegisterGauge("pulphd_registry_models", "models registered in the model registry", &h.Models.Models)
	r.RegisterGauge("pulphd_registry_resident_models", "registry models currently resident in memory", &h.Models.ResidentModels)
	r.RegisterGauge("pulphd_registry_resident_bytes", "summed resident footprint of in-memory registry models in bytes", &h.Models.ResidentBytes)
	r.RegisterCounter("pulphd_registry_evictions_total", "models evicted to disk under the resident-bytes budget", &h.Models.Evictions)
	r.RegisterCounter("pulphd_registry_fault_ins_total", "cold models loaded back from snapshot + WAL on first request", &h.Models.FaultIns)
	r.RegisterCounter("pulphd_registry_wal_appends_total", "online learning records appended to per-model write-ahead logs", &h.Models.WALAppends)
	r.RegisterCounter("pulphd_registry_wal_replayed_records_total", "WAL records replayed onto snapshots during fault-in/recovery", &h.Models.WALReplayed)
	r.RegisterCounter("pulphd_registry_snapshots_total", "per-model snapshot writes", &h.Models.Snapshots)
	r.RegisterHistogram("pulphd_registry_snapshot_latency_ns", "per-model snapshot write latency in nanoseconds", &h.Models.SnapshotNanos)
	r.RegisterSecondsHistogram("pulphd_registry_wal_fsync_seconds", "fsync latency on durable WAL appends in seconds", &h.Models.WALFsyncNanos)
	r.RegisterSecondsHistogram("pulphd_registry_faultin_seconds", "cold-model fault-in latency (snapshot read + WAL replay) in seconds", &h.Models.FaultInNanos)
	r.RegisterGaugeVec("pulphd_model_generation", "published model generation by model", h.Models.Generation)
	r.RegisterGaugeVec("pulphd_model_classes", "classes in the published generation by model", h.Models.Classes)
	r.RegisterGaugeVec("pulphd_model_resident_bytes", "resident footprint in bytes by model (0: evicted to disk)", h.Models.ModelResidentBytes)
	r.RegisterGaugeVec("pulphd_model_wal_records", "un-snapshotted WAL records by model (the replay a restart pays)", h.Models.ModelWALRecords)
	r.RegisterGaugeVec("pulphd_model_rolling_accuracy_permille", "rolling correction agreement by model, in 1/1000 (-1: no signal yet)", h.Models.RollingAccuracy)
	r.RegisterCounterVec("pulphd_model_requests_total", "registry operations by (model, op)", h.Models.ModelRequests)
	return h
}
