// Package obs is the observability layer of the reproduction: cycle
// tracing for the platform simulator and runtime metrics for the host
// inference path.
//
// The two halves mirror the two engines of DESIGN.md §7. A Trace
// attaches to pulp.Platform and records every KernelResult the
// simulator produces — per platform and core count, split into
// compute / serial / runtime / visible-DMA / hidden-DMA lanes — and
// exports Chrome trace-event JSON (chrome://tracing, Perfetto) plus a
// plain-text summary, making the paper's Table 2/3 cycle accounting
// inspectable event by event. The metric types (Counter, Histogram
// and the domain bundles in domains.go) instrument the host hot paths
// (hdc.Predict/PredictBatch, stream.Push/Replay, parallel.Pool) and
// export through expvar and a Prometheus-style text endpoint.
//
// Everything is off by default and nil-safe: a nil *Counter,
// *Histogram or domain-metrics pointer is a no-op, so instrumented
// code pays one pointer compare when observability is disabled and
// performs no heap allocation either way.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing, allocation-free atomic
// counter. The zero value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (model
// generation, class count, queue depth). The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (useful for depth-style gauges).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the fixed bucket count of every Histogram. The
// first bucket spans [0, 256 ns) and each subsequent one doubles the
// upper bound, so the last finite bound is 256ns·2²² ≈ 1.07 s; the
// final bucket is the +Inf overflow. Fixed geometry keeps Observe
// allocation-free and the exposition format stable.
const HistogramBuckets = 24

// histBase is the upper bound of bucket 0 in nanoseconds.
const histBase = 256

// Histogram is a fixed-bucket histogram with exponential
// (powers-of-two) bounds. The zero value is a latency histogram with
// a 256 ns first bucket, ready to use; SetBase rescales the geometry
// for other units (a base of 1 buckets small counts such as batch
// sizes by powers of two). A nil *Histogram is a no-op.
type Histogram struct {
	counts [HistogramBuckets]atomic.Int64
	sum    atomic.Int64
	base   atomic.Int64 // 0 means histBase
}

// SetBase sets the upper bound of bucket 0 (and thereby the whole
// powers-of-two geometry). Call it at setup time, before the first
// Observe; base < 1 resets to the 256 ns default.
func (h *Histogram) SetBase(base int64) {
	if h == nil {
		return
	}
	if base < 1 {
		base = 0
	}
	h.base.Store(base)
}

// Base returns the upper bound of bucket 0.
func (h *Histogram) Base() int64 {
	if h == nil {
		return histBase
	}
	if b := h.base.Load(); b > 0 {
		return b
	}
	return histBase
}

// bucketFor maps a value to its bucket index for the given base.
func bucketFor(ns, base int64) int {
	if ns < 0 {
		ns = 0
	}
	idx := bits.Len64(uint64(ns) / uint64(base))
	if idx >= HistogramBuckets {
		idx = HistogramBuckets - 1
	}
	return idx
}

// BucketBound returns the inclusive upper bound of bucket i in the
// default 256 ns geometry, or -1 for the +Inf overflow bucket.
func BucketBound(i int) int64 { return bucketBound(i, histBase) }

// bucketBound is BucketBound for an arbitrary base.
func bucketBound(i int, base int64) int64 {
	if i >= HistogramBuckets-1 {
		return -1
	}
	return base<<i - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one nanosecond measurement (or, after SetBase,
// one measurement in the histogram's unit).
func (h *Histogram) ObserveNanos(ns int64) {
	if h == nil {
		return
	}
	h.counts[bucketFor(ns, h.Base())].Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is an internally consistent copy of a histogram
// for export: Count is derived from the bucket counts read into
// Counts, so Count always equals the cumulative +Inf bucket that the
// Prometheus exposition writes — even when the snapshot is taken
// mid-update. SumNs is read separately and may be off by the handful
// of in-flight observations (it only feeds the mean); the structural
// invariant the scrape format needs — Σ Counts == Count — holds by
// construction.
type HistogramSnapshot struct {
	Counts [HistogramBuckets]int64
	SumNs  int64
	Count  int64
	// Base is the bucket-0 upper bound of the source histogram, so
	// exporters compute the right bucket bounds for any geometry.
	Base int64
}

// BucketBound returns the inclusive upper bound of bucket i in the
// snapshot's geometry, or -1 for the +Inf overflow bucket.
func (s HistogramSnapshot) BucketBound(i int) int64 { return bucketBound(i, s.Base) }

// Snapshot copies the current state; the zero snapshot for nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Base: histBase}
	if h == nil {
		return s
	}
	s.Base = h.Base()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumNs = h.sum.Load()
	return s
}

// Mean returns the mean observation in nanoseconds, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
