package obs

import (
	"sort"
	"sync"
)

// This file is the online accuracy/drift monitor of the serving
// stack. The feedback signal is stream.Correct: when the wearer (or a
// downstream consumer) corrects a decision, we learn what the model
// predicted and what the window actually was — a labelled sample of
// serving accuracy. The monitor keeps exact per-class confusion
// counters for the lifetime of the process and a rolling agreement
// window that surfaces drift: a falling rolling accuracy while the
// cumulative one holds means the data moved from under the model.

// CounterVec is a family of counters distinguished by a fixed pair of
// label names — the minimal labelled-metric support the confusion
// matrix needs. Cell lookup takes a read lock (feedback is orders of
// magnitude rarer than predictions, so this is nowhere near a hot
// path); the returned *Counter is the usual lock-free atomic.
type CounterVec struct {
	mu    sync.RWMutex
	names [2]string
	cells map[[2]string]*Counter
}

// NewCounterVec returns an empty family with the given label names.
func NewCounterVec(name1, name2 string) *CounterVec {
	return &CounterVec{names: [2]string{name1, name2}, cells: map[[2]string]*Counter{}}
}

// LabelNames returns the two label names.
func (v *CounterVec) LabelNames() (string, string) { return v.names[0], v.names[1] }

// With returns the counter for the given label values, creating it on
// first use. Nil-safe: a nil family hands back a nil (no-op) counter.
func (v *CounterVec) With(v1, v2 string) *Counter {
	if v == nil {
		return nil
	}
	key := [2]string{v1, v2}
	v.mu.RLock()
	c := v.cells[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.cells[key]; c == nil {
		c = &Counter{}
		v.cells[key] = c
	}
	return c
}

// VecCell is one exported cell of a CounterVec.
type VecCell struct {
	Values [2]string
	Count  int64
}

// Snapshot returns every cell sorted by label values, for export.
func (v *CounterVec) Snapshot() []VecCell {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := make([]VecCell, 0, len(v.cells))
	for key, c := range v.cells {
		out = append(out, VecCell{Values: key, Count: c.Value()})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Values[0] != out[j].Values[0] {
			return out[i].Values[0] < out[j].Values[0]
		}
		return out[i].Values[1] < out[j].Values[1]
	})
	return out
}

// driftWindow is the rolling agreement window size: small enough to
// react within a session, large enough that one bad correction does
// not swing the gauge.
const driftWindow = 256

// DriftMonitor accumulates prediction-vs-correction feedback. The
// zero value is not ready — construct with NewDriftMonitor (the
// confusion family needs its label names) — but every method is
// nil-safe, so an uninstalled monitor is free.
type DriftMonitor struct {
	confusion *CounterVec

	mu      sync.Mutex
	ring    [driftWindow]bool
	n       int // total feedbacks ever
	correct int // agreements currently in the ring
}

// NewDriftMonitor returns an empty monitor whose confusion matrix is
// labelled (predicted, actual).
func NewDriftMonitor() *DriftMonitor {
	return &DriftMonitor{confusion: NewCounterVec("predicted", "actual")}
}

// Confusion exposes the per-class confusion family for registration.
func (d *DriftMonitor) Confusion() *CounterVec {
	if d == nil {
		return nil
	}
	return d.confusion
}

// RecordFeedback folds one corrected decision in: the model said
// predicted, the truth was actual.
func (d *DriftMonitor) RecordFeedback(predicted, actual string) {
	if d == nil {
		return
	}
	d.confusion.With(predicted, actual).Inc()
	ok := predicted == actual
	d.mu.Lock()
	slot := d.n % driftWindow
	if d.n >= driftWindow && d.ring[slot] {
		d.correct--
	}
	d.ring[slot] = ok
	if ok {
		d.correct++
	}
	d.n++
	d.mu.Unlock()
}

// Feedbacks returns how many corrections have been recorded.
func (d *DriftMonitor) Feedbacks() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(d.n)
}

// Mismatches returns how many recorded feedbacks disagreed with the
// prediction, over the whole process lifetime.
func (d *DriftMonitor) Mismatches() int64 {
	var miss int64
	for _, c := range d.Confusion().Snapshot() {
		if c.Values[0] != c.Values[1] {
			miss += c.Count
		}
	}
	return miss
}

// RollingAccuracyPermille returns the agreement rate over the last
// driftWindow feedbacks, in thousandths (gauges are integers); -1
// when no feedback has arrived yet, so dashboards can distinguish
// "no signal" from "everything wrong".
func (d *DriftMonitor) RollingAccuracyPermille() int64 {
	if d == nil {
		return -1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.n
	if n == 0 {
		return -1
	}
	if n > driftWindow {
		n = driftWindow
	}
	return int64(d.correct) * 1000 / int64(n)
}
