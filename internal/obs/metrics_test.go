package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestNilSafety pins the central contract: every metric type and
// domain bundle is a no-op through a nil pointer — instrumented hot
// paths must never have to check for enablement beyond that.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	h.ObserveNanos(42)
	if s := h.Snapshot(); s.Count != 0 || s.SumNs != 0 {
		t.Fatal("nil histogram holds observations")
	}
	var im *InferenceMetrics
	im.RecordPredict(time.Millisecond)
	im.RecordBatch(10, true, time.Millisecond)
	var sm *StreamMetrics
	sm.RecordSample()
	sm.RecordDecision()
	sm.RecordReplay(100, 20, time.Millisecond)
	var pm *PoolMetrics
	pm.RecordCollective(4, 4)
	var g *Gauge
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	var svm *ServingMetrics
	svm.RecordPublish(3, 5, 2, time.Millisecond)
	svm.RecordModel(3, 5, 2)
	svm.RecordRequest(true)
	svm.RecordRequest(false)
	svm.RecordServeBatch(8)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(41)
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge %d, want 42", got)
	}
	g.Set(5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge %d after Set, want 5", got)
	}
}

func TestServingMetrics(t *testing.T) {
	var m ServingMetrics
	m.RecordModel(1, 5, 4)
	m.RecordPublish(2, 6, 4, time.Millisecond)
	m.RecordRequest(true)
	m.RecordRequest(true)
	m.RecordRequest(false)
	m.RecordServeBatch(3)
	if m.Generation.Value() != 2 || m.Classes.Value() != 6 || m.Shards.Value() != 4 {
		t.Fatalf("gauges %d/%d/%d", m.Generation.Value(), m.Classes.Value(), m.Shards.Value())
	}
	if m.Learns.Value() != 1 {
		t.Fatalf("learns %d, want 1 (RecordModel must not count)", m.Learns.Value())
	}
	if m.Requests.Value() != 3 || m.Rejected.Value() != 1 {
		t.Fatalf("requests/rejected %d/%d, want 3/1 (Requests counts rejected too)", m.Requests.Value(), m.Rejected.Value())
	}
	if m.Batches.Value() != 1 || m.BatchRequests.Value() != 3 {
		t.Fatalf("batches/batchRequests %d/%d", m.Batches.Value(), m.BatchRequests.Value())
	}
}

// TestHistogramSnapshotConsistentUnderWrites hammers a histogram from
// writer goroutines while snapshotting it: every snapshot must satisfy
// the structural invariant Σ Counts == Count (the cumulative +Inf
// bucket the Prometheus exposition derives), whatever instant it was
// taken at. Run with -race this also proves the export path is
// data-race-free against concurrent updates.
func TestHistogramSnapshotConsistentUnderWrites(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			ns := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveNanos(ns)
				ns = ns*1664525 + 1013904223
				if ns < 0 {
					ns = -ns
				}
			}
		}(int64(w + 1))
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var sum int64
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d inconsistent: Σcounts=%d Count=%d", i, sum, s.Count)
		}
	}
	close(stop)
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter %d, want 42", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {255, 0}, {256, 1}, {511, 1}, {512, 2},
		{1 << 20, 13}, {1 << 62, HistogramBuckets - 1}, {-5, 0},
	}
	for _, tc := range cases {
		if got := bucketFor(tc.ns, histBase); got != tc.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.ns, got, tc.bucket)
		}
		h.ObserveNanos(tc.ns)
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count %d, want %d", s.Count, len(cases))
	}
	// Bounds are monotone and the last is +Inf.
	prev := int64(-1)
	for i := 0; i < HistogramBuckets-1; i++ {
		b := BucketBound(i)
		if b <= prev {
			t.Fatalf("bucket %d bound %d not increasing", i, b)
		}
		prev = b
	}
	if BucketBound(HistogramBuckets-1) != -1 {
		t.Fatal("last bucket is not +Inf")
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean %f", m)
	}
}

// TestObserveAllocationFree pins the hot-path contract: recording
// into live metrics allocates nothing.
func TestObserveAllocationFree(t *testing.T) {
	h := NewHostMetrics()
	allocs := testing.AllocsPerRun(100, func() {
		h.Inference.RecordPredict(1500 * time.Nanosecond)
		h.Inference.RecordBatch(64, false, time.Millisecond)
		h.Stream.RecordSample()
		h.Stream.RecordDecision()
		h.Pool.RecordCollective(4, 4)
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %v times per run, want 0", allocs)
	}
}

func TestPoolUtilization(t *testing.T) {
	var pm PoolMetrics
	pm.RecordCollective(4, 4)
	pm.RecordCollective(2, 4)
	pm.RecordCollective(1, 4) // serial fallback
	if pm.Collectives.Value() != 3 || pm.Tasks.Value() != 7 || pm.Slots.Value() != 12 {
		t.Fatalf("collectives/tasks/slots = %d/%d/%d", pm.Collectives.Value(), pm.Tasks.Value(), pm.Slots.Value())
	}
	if pm.SerialFallbacks.Value() != 1 {
		t.Fatalf("serial fallbacks %d, want 1", pm.SerialFallbacks.Value())
	}
}

func TestPrometheusExposition(t *testing.T) {
	h := NewHostMetrics()
	h.Inference.RecordPredict(1500 * time.Nanosecond)
	h.Inference.RecordBatch(64, true, time.Millisecond)
	h.Serving.RecordPublish(7, 64, 8, time.Microsecond)
	var buf bytes.Buffer
	if err := h.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pulphd_predict_total counter",
		"pulphd_predict_total 1",
		"# TYPE pulphd_serving_generation gauge",
		"pulphd_serving_generation 7",
		"pulphd_serving_classes 64",
		"pulphd_serving_shards 8",
		"pulphd_serving_learns_total 1",
		"pulphd_predict_batch_windows_total 64",
		"pulphd_predict_batch_serial_fallbacks_total 1",
		"# TYPE pulphd_predict_latency_ns histogram",
		`pulphd_predict_latency_ns_bucket{le="+Inf"} 1`,
		"pulphd_predict_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Histogram bucket counts must be cumulative: the +Inf bucket of
	// the batch histogram equals its count.
	if !strings.Contains(out, `pulphd_predict_batch_latency_ns_bucket{le="+Inf"} 1`) {
		t.Error("batch histogram +Inf bucket is not cumulative")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.RegisterCounter("x_total", "", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.RegisterCounter("x_total", "", &c)
}

func TestSnapshotAndExpvar(t *testing.T) {
	h := NewHostMetrics()
	h.Stream.RecordReplay(500, 100, 2*time.Millisecond)
	snap := h.Registry.Snapshot()
	if got := snap["pulphd_stream_samples_total"]; got != int64(500) {
		t.Fatalf("snapshot samples %v", got)
	}
	hist, ok := snap["pulphd_stream_replay_latency_ns"].(map[string]any)
	if !ok || hist["count"] != int64(1) {
		t.Fatalf("snapshot histogram %v", snap["pulphd_stream_replay_latency_ns"])
	}
	// Publishing twice under one name must not panic.
	h.Registry.PublishExpvar("pulphd_test_metrics")
	h.Registry.PublishExpvar("pulphd_test_metrics")
	if len(h.Registry.sortedNames()) < 10 {
		t.Fatalf("registry holds %d names", len(h.Registry.sortedNames()))
	}
}
