package obs

import "time"

// This file defines the domain metric bundles the host packages hang
// their instrumentation on. Each bundle is installed with the
// package's SetMetrics (hdc, stream, parallel); the default nil
// pointer disables recording, and every method is nil-safe so the
// instrumented call sites stay branchless beyond one compare.

// InferenceMetrics instruments hdc.Predict and PredictBatch.
type InferenceMetrics struct {
	// Predicts counts Predict calls; PredictNanos is their latency.
	Predicts     Counter
	PredictNanos Histogram
	// BatchCalls / BatchWindows count PredictBatch invocations and
	// the windows they classified; BatchNanos is whole-call latency.
	BatchCalls   Counter
	BatchWindows Counter
	BatchNanos   Histogram
	// BatchSerialFallbacks counts batch calls that ran without a
	// worker pool (nil pool — the serial fallback path).
	BatchSerialFallbacks Counter
	// EncodeNanos / SearchNanos split instrumented per-request
	// predicts into the paper's two stages — window encoding vs AM
	// search — the per-stage lens of Table 3, per serving request.
	EncodeNanos Histogram
	SearchNanos Histogram
}

// RecordStages folds one staged predict (encode, then search) into
// the per-stage histograms.
func (m *InferenceMetrics) RecordStages(encode, search time.Duration) {
	if m == nil {
		return
	}
	m.EncodeNanos.Observe(encode)
	m.SearchNanos.Observe(search)
}

// RecordPredict folds one Predict call into the metrics.
func (m *InferenceMetrics) RecordPredict(d time.Duration) {
	if m == nil {
		return
	}
	m.Predicts.Inc()
	m.PredictNanos.Observe(d)
}

// RecordBatch folds one PredictBatch call over n windows into the
// metrics; serial marks the nil-pool fallback.
func (m *InferenceMetrics) RecordBatch(n int, serial bool, d time.Duration) {
	if m == nil {
		return
	}
	m.BatchCalls.Inc()
	m.BatchWindows.Add(int64(n))
	m.BatchNanos.Observe(d)
	if serial {
		m.BatchSerialFallbacks.Inc()
	}
}

// StreamMetrics instruments stream.Push and Replay.
type StreamMetrics struct {
	// Samples counts samples pushed (directly or via Replay);
	// Decisions counts decisions emitted.
	Samples   Counter
	Decisions Counter
	// Replays counts Replay calls; ReplayNanos is their latency.
	Replays     Counter
	ReplayNanos Histogram
	// Corrections counts label-corrected windows folded back into an
	// online learner via stream.Correct.
	Corrections Counter
	// PredictFailures counts pushed windows whose prediction panicked
	// (e.g. a serving model with no classes yet) and were dropped
	// instead of killing the stream.
	PredictFailures Counter
	// Drift, when non-nil, receives the predicted-vs-corrected label
	// pairs stream.Correct observes (the online accuracy signal).
	Drift *DriftMonitor
}

// RecordSample counts one pushed sample.
func (m *StreamMetrics) RecordSample() {
	if m == nil {
		return
	}
	m.Samples.Inc()
}

// RecordDecision counts one emitted decision.
func (m *StreamMetrics) RecordDecision() {
	if m == nil {
		return
	}
	m.Decisions.Inc()
}

// RecordReplay folds one Replay call (samples consumed, decisions
// emitted, wall time) into the metrics.
func (m *StreamMetrics) RecordReplay(samples, decisions int, d time.Duration) {
	if m == nil {
		return
	}
	m.Replays.Inc()
	m.Samples.Add(int64(samples))
	m.Decisions.Add(int64(decisions))
	m.ReplayNanos.Observe(d)
}

// RecordCorrection counts one label-corrected window learned online.
func (m *StreamMetrics) RecordCorrection() {
	if m == nil {
		return
	}
	m.Corrections.Inc()
}

// RecordPredictFailure counts one dropped decision whose prediction
// panicked.
func (m *StreamMetrics) RecordPredictFailure() {
	if m == nil {
		return
	}
	m.PredictFailures.Inc()
}

// RecordFeedback forwards one predicted-vs-actual label pair to the
// drift monitor (a no-op without one installed).
func (m *StreamMetrics) RecordFeedback(predicted, actual string) {
	if m == nil {
		return
	}
	m.Drift.RecordFeedback(predicted, actual)
}

// ServingMetrics instruments the online-learning serving layer: the
// copy-on-write model generations of hdc.Serving and the request
// queue of the /predict–/learn HTTP front end.
type ServingMetrics struct {
	// Learns counts Learn/Retrain publications; LearnNanos is the time
	// from encode to generation publish.
	Learns     Counter
	LearnNanos Histogram
	// Generation is the id of the currently published model snapshot
	// (monotonically increasing); Classes and Shards describe its
	// associative-memory layout.
	Generation Gauge
	Classes    Gauge
	Shards     Gauge
	// Requests counts /predict requests accepted into the queue;
	// Rejected counts the ones bounced with 429 by backpressure.
	Requests Counter
	Rejected Counter
	// Batches counts dispatcher drains; BatchRequests the requests
	// they served, so BatchRequests/Batches is the mean batch size.
	Batches       Counter
	BatchRequests Counter
	// QueueWaitNanos is the time a predict request spent in the
	// bounded queue before the dispatcher picked it up — the serving
	// stage the paper's on-device chain does not have, and the first
	// place overload shows.
	QueueWaitNanos Histogram
	// BatchSizes distributes dispatcher drain sizes (powers-of-two
	// buckets from 1, set up by NewHostMetrics).
	BatchSizes Histogram
	// Timeouts counts predict requests answered 504 because the
	// per-request deadline expired before the dispatcher's result.
	Timeouts Counter
	// Retries counts dispatcher predict attempts re-run after a
	// recovered transient failure (the bounded-backoff retry loop).
	Retries Counter
	// PanicsRecovered counts worker/dispatcher panics converted into
	// 500 responses instead of process death.
	PanicsRecovered Counter
	// DegradedScans counts predicts that lost a shard mid-search and
	// fell back to the flat associative-memory scan.
	DegradedScans Counter
	// ModelBytes is the resident footprint of the published model
	// generation (IM + CIM + AM prototypes) in bytes — the gauge that
	// makes the rematerializing backend's footprint win visible.
	ModelBytes Gauge
}

// RecordFootprint updates the resident model footprint gauge.
func (m *ServingMetrics) RecordFootprint(bytes int) {
	if m == nil {
		return
	}
	m.ModelBytes.Set(int64(bytes))
}

// RecordTimeout counts one predict request that hit its deadline.
func (m *ServingMetrics) RecordTimeout() {
	if m == nil {
		return
	}
	m.Timeouts.Inc()
}

// RecordRetry counts one re-attempted dispatcher predict.
func (m *ServingMetrics) RecordRetry() {
	if m == nil {
		return
	}
	m.Retries.Inc()
}

// RecordPanicRecovered counts one panic converted into an error
// response.
func (m *ServingMetrics) RecordPanicRecovered() {
	if m == nil {
		return
	}
	m.PanicsRecovered.Inc()
}

// RecordDegraded counts one flat-scan fallback after a shard failure.
func (m *ServingMetrics) RecordDegraded() {
	if m == nil {
		return
	}
	m.DegradedScans.Inc()
}

// RecordQueueWait folds one request's queue residency.
func (m *ServingMetrics) RecordQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.QueueWaitNanos.Observe(d)
}

// RecordPublish folds one generation publication into the metrics.
func (m *ServingMetrics) RecordPublish(generation uint64, classes, shards int, d time.Duration) {
	if m == nil {
		return
	}
	m.Learns.Inc()
	m.LearnNanos.Observe(d)
	m.Generation.Set(int64(generation))
	m.Classes.Set(int64(classes))
	m.Shards.Set(int64(shards))
}

// RecordModel updates the generation gauges without counting a learn
// (initial publication, server startup).
func (m *ServingMetrics) RecordModel(generation uint64, classes, shards int) {
	if m == nil {
		return
	}
	m.Generation.Set(int64(generation))
	m.Classes.Set(int64(classes))
	m.Shards.Set(int64(shards))
}

// RecordRequest counts one serving request. Requests counts every
// request; rejected ones (backpressure, malformed bodies) count in
// Rejected too.
func (m *ServingMetrics) RecordRequest(accepted bool) {
	if m == nil {
		return
	}
	m.Requests.Inc()
	if !accepted {
		m.Rejected.Inc()
	}
}

// RecordServeBatch folds one dispatcher drain of n requests.
func (m *ServingMetrics) RecordServeBatch(n int) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.BatchRequests.Add(int64(n))
	m.BatchSizes.ObserveNanos(int64(n))
}

// FaultMetrics instruments the fault-injection layer (internal/fault):
// how many corruption calls ran and how many bits they flipped.
type FaultMetrics struct {
	// Injections counts corruption calls that had injection enabled
	// (BER > 0); FlippedBits counts the bits they actually flipped.
	Injections  Counter
	FlippedBits Counter
}

// RecordInjection folds one corruption call that flipped n bits.
func (m *FaultMetrics) RecordInjection(n int) {
	if m == nil {
		return
	}
	m.Injections.Inc()
	m.FlippedBits.Add(int64(n))
}

// PoolMetrics instruments parallel.Pool collectives.
type PoolMetrics struct {
	// Collectives counts collective calls; Tasks counts the chunks
	// they actually dispatched (including the caller's chunk 0) and
	// Slots the chunks they could have dispatched (pool width), so
	// Tasks/Slots is the mean worker utilization.
	Collectives Counter
	Tasks       Counter
	Slots       Counter
	// SerialFallbacks counts collectives that ran entirely on the
	// calling goroutine (single chunk, or a closed pool).
	SerialFallbacks Counter
}

// RecordCollective folds one collective that ran active of workers
// possible chunks into the metrics.
func (m *PoolMetrics) RecordCollective(active, workers int) {
	if m == nil {
		return
	}
	m.Collectives.Inc()
	m.Tasks.Add(int64(active))
	m.Slots.Add(int64(workers))
	if active <= 1 {
		m.SerialFallbacks.Inc()
	}
}
