package obs

import "time"

// This file defines the domain metric bundles the host packages hang
// their instrumentation on. Each bundle is installed with the
// package's SetMetrics (hdc, stream, parallel); the default nil
// pointer disables recording, and every method is nil-safe so the
// instrumented call sites stay branchless beyond one compare.

// InferenceMetrics instruments hdc.Predict and PredictBatch.
type InferenceMetrics struct {
	// Predicts counts Predict calls; PredictNanos is their latency.
	Predicts     Counter
	PredictNanos Histogram
	// BatchCalls / BatchWindows count PredictBatch invocations and
	// the windows they classified; BatchNanos is whole-call latency.
	BatchCalls   Counter
	BatchWindows Counter
	BatchNanos   Histogram
	// BatchSerialFallbacks counts batch calls that ran without a
	// worker pool (nil pool — the serial fallback path).
	BatchSerialFallbacks Counter
}

// RecordPredict folds one Predict call into the metrics.
func (m *InferenceMetrics) RecordPredict(d time.Duration) {
	if m == nil {
		return
	}
	m.Predicts.Inc()
	m.PredictNanos.Observe(d)
}

// RecordBatch folds one PredictBatch call over n windows into the
// metrics; serial marks the nil-pool fallback.
func (m *InferenceMetrics) RecordBatch(n int, serial bool, d time.Duration) {
	if m == nil {
		return
	}
	m.BatchCalls.Inc()
	m.BatchWindows.Add(int64(n))
	m.BatchNanos.Observe(d)
	if serial {
		m.BatchSerialFallbacks.Inc()
	}
}

// StreamMetrics instruments stream.Push and Replay.
type StreamMetrics struct {
	// Samples counts samples pushed (directly or via Replay);
	// Decisions counts decisions emitted.
	Samples   Counter
	Decisions Counter
	// Replays counts Replay calls; ReplayNanos is their latency.
	Replays     Counter
	ReplayNanos Histogram
}

// RecordSample counts one pushed sample.
func (m *StreamMetrics) RecordSample() {
	if m == nil {
		return
	}
	m.Samples.Inc()
}

// RecordDecision counts one emitted decision.
func (m *StreamMetrics) RecordDecision() {
	if m == nil {
		return
	}
	m.Decisions.Inc()
}

// RecordReplay folds one Replay call (samples consumed, decisions
// emitted, wall time) into the metrics.
func (m *StreamMetrics) RecordReplay(samples, decisions int, d time.Duration) {
	if m == nil {
		return
	}
	m.Replays.Inc()
	m.Samples.Add(int64(samples))
	m.Decisions.Add(int64(decisions))
	m.ReplayNanos.Observe(d)
}

// PoolMetrics instruments parallel.Pool collectives.
type PoolMetrics struct {
	// Collectives counts collective calls; Tasks counts the chunks
	// they actually dispatched (including the caller's chunk 0) and
	// Slots the chunks they could have dispatched (pool width), so
	// Tasks/Slots is the mean worker utilization.
	Collectives Counter
	Tasks       Counter
	Slots       Counter
	// SerialFallbacks counts collectives that ran entirely on the
	// calling goroutine (single chunk, or a closed pool).
	SerialFallbacks Counter
}

// RecordCollective folds one collective that ran active of workers
// possible chunks into the metrics.
func (m *PoolMetrics) RecordCollective(active, workers int) {
	if m == nil {
		return
	}
	m.Collectives.Inc()
	m.Tasks.Add(int64(active))
	m.Slots.Add(int64(workers))
	if active <= 1 {
		m.SerialFallbacks.Inc()
	}
}
