package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHDRIndexMonotonic pins the bucket layout: indices never decrease
// with the value, every bucket's upper bound maps back to itself, and
// the next value after an upper bound lands in a later bucket.
func TestHDRIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := hdrIndex(v)
		if idx < prev {
			t.Fatalf("hdrIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		ub := hdrUpperBound(idx)
		if ub < v {
			t.Fatalf("upper bound %d of bucket %d below member %d", ub, idx, v)
		}
		if hdrIndex(ub) != idx {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", ub, idx, hdrIndex(ub))
		}
		if idx+1 < hdrBuckets && hdrIndex(ub+1) != idx+1 {
			t.Fatalf("value %d after bucket %d maps to %d, want %d", ub+1, idx, hdrIndex(ub+1), idx+1)
		}
	}
	if hdrIndex(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

// TestHDRQuantileError checks quantiles against an exactly sorted
// sample: the histogram answer must be ≥ the true order statistic and
// within the ~1.6% relative bucket width above it.
func TestHDRQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h HDR
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform latencies from ~1 µs to ~1 s.
		v := int64(1000 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v)
		vals[i] = v
		h.RecordNanos(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(n)+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		truth := vals[rank]
		got := int64(h.Quantile(q))
		if got < truth {
			t.Errorf("q=%v: histogram %d below true order statistic %d", q, got, truth)
		}
		if float64(got) > float64(truth)*1.04 {
			t.Errorf("q=%v: histogram %d more than 4%% above true %d", q, got, truth)
		}
	}
	if h.Count() != int64(n) {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	if h.Max() != time.Duration(vals[n-1]) {
		t.Fatalf("max %d, want %d", h.Max(), vals[n-1])
	}
}

// TestHDRMergeAndEdges pins merge additivity, the empty-histogram
// zeros, and nil-safety.
func TestHDRMergeAndEdges(t *testing.T) {
	var a, b HDR
	for i := 1; i <= 100; i++ {
		a.RecordNanos(int64(i) * 1000)
	}
	for i := 101; i <= 200; i++ {
		b.RecordNanos(int64(i) * 1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d, want 200", a.Count())
	}
	if got := a.Quantile(0.5); got < 99*1000 || got > 105*1000 {
		t.Fatalf("merged p50 %v outside [99µs, 105µs]", got)
	}
	if a.Max() != 200*1000 {
		t.Fatalf("merged max %v, want 200µs", a.Max())
	}

	var empty HDR
	if empty.Quantile(0.99) != 0 || empty.Count() != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram must answer zeros")
	}
	var nilH *HDR
	nilH.Record(time.Second)
	nilH.Merge(&a)
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Fatal("nil histogram must no-op")
	}

	a.Reset()
	if a.Count() != 0 || a.Quantile(0.9) != 0 {
		t.Fatal("reset histogram must be empty")
	}
}
