package flight

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"pulphd/internal/obs"
)

// testRec builds a recorder holding a small request-shaped span tree.
func testRec(id uint64, spans int) *obs.Spans {
	rec := obs.NewSpans(spans + 4)
	root := rec.Start("request", obs.NoSpan)
	rec.Annotate(root, "id", int64(id))
	for i := 0; i < spans; i++ {
		sp := rec.Start("queue.wait", root)
		rec.End(sp)
	}
	rec.End(root)
	rec.ID = id
	return rec
}

func TestTriggerString(t *testing.T) {
	cases := map[Trigger]string{
		0:                        "none",
		TrigTimeout:              "timeout",
		TrigRetry | TrigTimeout:  "timeout|retry",
		TrigError | TrigDegraded: "error|degraded",
		TrigShed | TrigSlow:      "shed|slow",
	}
	for trig, want := range cases {
		if got := trig.String(); got != want {
			t.Errorf("Trigger(%b).String() = %q, want %q", trig, got, want)
		}
	}
}

func TestNilAndDisabledRing(t *testing.T) {
	var r *Ring
	r.Capture(testRec(1, 2), "m", 1, TrigError, time.Millisecond)
	if r.Captures() != 0 || r.Len() != 0 || r.Snapshot("") != nil || len(r.Summaries("")) != 0 {
		t.Fatal("nil ring holds state")
	}
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChromeTrace(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if NewRing(0, 8) != nil {
		t.Fatal("keep=0 should build the disabled (nil) ring")
	}
}

func TestCaptureFidelity(t *testing.T) {
	r := NewRing(4, 16)
	r.now = func() int64 { return 12345 }
	rec := testRec(42, 3)
	r.Capture(rec, "emg", 7, TrigTimeout|TrigRetry, 85*time.Millisecond)
	if r.Captures() != 1 || r.Len() != 1 {
		t.Fatalf("captures=%d len=%d", r.Captures(), r.Len())
	}
	got := r.Snapshot("")
	if len(got) != 1 {
		t.Fatalf("snapshot %d entries", len(got))
	}
	e := got[0]
	if e.Seq != 1 || e.ID != 42 || e.Model != "emg" || e.Generation != 7 ||
		e.Trigger != TrigTimeout|TrigRetry || e.UnixNanos != 12345 ||
		e.Duration != 85*time.Millisecond || e.Dropped != 0 {
		t.Fatalf("entry %+v", e)
	}
	if len(e.Spans) != 4 || e.Spans[0].Name != "request" || e.Spans[1].Name != "queue.wait" {
		t.Fatalf("spans %+v", e.Spans)
	}
	// A zero trigger must not capture: callers hand bits over blindly.
	r.Capture(rec, "emg", 7, 0, time.Millisecond)
	if r.Captures() != 1 {
		t.Fatal("zero trigger captured")
	}
	// A nil recorder still captures metadata (tracing disabled).
	r.Capture(nil, "bare", 1, TrigShed, time.Millisecond)
	entries := r.Snapshot("")
	last := entries[len(entries)-1]
	if last.Model != "bare" || last.ID != 0 || len(last.Spans) != 0 {
		t.Fatalf("nil-recorder entry %+v", last)
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing(3, 8)
	for i := 1; i <= 5; i++ {
		r.Capture(testRec(uint64(i), 1), "m", uint64(i), TrigError, time.Duration(i)*time.Millisecond)
	}
	if r.Captures() != 5 || r.Len() != 3 {
		t.Fatalf("captures=%d len=%d", r.Captures(), r.Len())
	}
	got := r.Snapshot("")
	if len(got) != 3 || got[0].Seq != 3 || got[1].Seq != 4 || got[2].Seq != 5 {
		t.Fatalf("wrap order %+v", got)
	}
}

func TestModelFilter(t *testing.T) {
	r := NewRing(8, 8)
	r.Capture(testRec(1, 1), "a", 1, TrigError, time.Millisecond)
	r.Capture(testRec(2, 1), "b", 1, TrigTimeout, time.Millisecond)
	r.Capture(testRec(3, 1), "a", 2, TrigSlow, time.Millisecond)
	if got := r.Snapshot("a"); len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("filter a: %+v", got)
	}
	if got := r.Summaries("b"); len(got) != 1 || got[0].Trigger != "timeout" {
		t.Fatalf("filter b: %+v", got)
	}
	if got := r.Snapshot("none"); len(got) != 0 {
		t.Fatalf("filter none: %+v", got)
	}
}

// TestSpanOverflowCounted pins the copy bound: a recorder holding more
// spans than the slot's preallocated capacity drops the tail and says
// so, instead of allocating.
func TestSpanOverflowCounted(t *testing.T) {
	r := NewRing(2, 2)
	r.Capture(testRec(9, 6), "m", 1, TrigError, time.Millisecond)
	e := r.Snapshot("")[0]
	if len(e.Spans) != 2 || e.Dropped != 5 {
		t.Fatalf("overflow entry: %d spans, %d dropped", len(e.Spans), e.Dropped)
	}
}

func TestWriteSummaryJSON(t *testing.T) {
	r := NewRing(4, 8)
	r.now = func() int64 { return 99 }
	r.Capture(testRec(7, 2), "emg", 3, TrigDegraded|TrigSlow, 42*time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf, ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Captures uint64    `json:"captures"`
		Entries  []Summary `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, buf.String())
	}
	if doc.Captures != 1 || len(doc.Entries) != 1 {
		t.Fatalf("summary doc %+v", doc)
	}
	s := doc.Entries[0]
	if s.Request != 7 || s.Model != "emg" || s.Generation != 3 ||
		s.Trigger != "degraded|slow" || s.DurationMs != 42 || s.Spans != 3 {
		t.Fatalf("summary entry %+v", s)
	}
	// An empty ring writes entries:[] (not null) for easy clients.
	buf.Reset()
	if err := NewRing(1, 1).WriteSummary(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"entries":[]`)) {
		t.Fatalf("empty summary %s", buf.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRing(4, 8)
	r.Capture(testRec(11, 2), "emg", 5, TrigTimeout, 10*time.Millisecond)
	r.Capture(nil, "", 0, TrigShed, time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Pid   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	var procName string
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" && ev.Pid == 1 {
			procName, _ = ev.Args["name"].(string)
		}
		if ev.Phase == "X" && ev.Pid == 1 {
			spans++
			if ev.Args["model"] != "emg" || ev.Args["trigger"] != "timeout" {
				t.Fatalf("span args %+v", ev.Args)
			}
		}
	}
	if procName != "flight 1 · timeout · emg@5" {
		t.Fatalf("process label %q", procName)
	}
	if spans != 3 {
		t.Fatalf("span events %d, want 3", spans)
	}
}

// TestCaptureAllocs pins the capture path itself: once the ring is
// built, pinning a timeline allocates nothing (copies land in the
// slot's preallocated backing).
func TestCaptureAllocs(t *testing.T) {
	r := NewRing(8, 32)
	rec := testRec(1, 10)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Capture(rec, "emg", 1, TrigTimeout, time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("Capture allocates %v/op", allocs)
	}
}

// TestConcurrentCaptureDumpRecycle is the race hammer: writers pin
// timelines from recycled recorders while readers dump summaries and
// traces. Run under -race in CI.
func TestConcurrentCaptureDumpRecycle(t *testing.T) {
	r := NewRing(8, 16)
	tl := obs.NewTimelines(4, 16)
	const writers, iters = 4, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := tl.Acquire(uint64(w*iters + i))
				root := obs.NoSpan
				if rec != nil {
					root = rec.Start("request", obs.NoSpan)
					sp := rec.Start("batch", root)
					rec.End(sp)
					rec.End(root)
				}
				r.Capture(rec, "emg", uint64(i), TrigError, time.Millisecond)
				tl.Release(rec)
			}
		}(w)
	}
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var buf bytes.Buffer
				if err := r.WriteSummary(&buf, ""); err != nil {
					t.Error(err)
					return
				}
				buf.Reset()
				if err := r.WriteChromeTrace(&buf, "emg"); err != nil {
					t.Error(err)
					return
				}
				_ = r.Len()
			}
		}()
	}
	wg.Wait()
	// Acquire hands out nil recorders under contention (free list
	// drained); metadata-only captures still count.
	if got := r.Captures(); got != writers*iters {
		t.Fatalf("captures %d, want %d", got, writers*iters)
	}
}
