// Package flight is the serving tier's always-on flight recorder: a
// fixed-size ring of recently captured tail-event request timelines.
// The serving path runs with span recording on for every request (the
// obs.Timelines slab); when a request ends badly — timeout, error,
// shed after waiting, panic retry, degraded-shard fallback — or
// slower than its model's latency objective, its full span timeline
// is copied into the ring before the recorder is recycled. The ring
// is therefore a black box that always holds the last N incidents
// with handler→queue→batch→shard detail, model name and generation,
// dumpable as Chrome trace JSON (GET /debug/flight) and written to
// disk automatically on an SLO burn-rate breach.
//
// Capture copies into preallocated slots under one short mutex: no
// allocation once the ring is warm, no ownership games with the
// Timelines free list, and dump readers never block the serving path
// for longer than one entry copy.
package flight

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"time"

	"pulphd/internal/obs"
)

// Trigger is the bitmask of reasons a request's timeline was pinned.
type Trigger uint32

// Trigger bits, one per entry in the tail-event taxonomy (DESIGN.md
// §14). A capture may carry several: a retried request that still
// timed out is TrigRetry|TrigTimeout.
const (
	// TrigTimeout marks a request answered 504 at its deadline.
	TrigTimeout Trigger = 1 << iota
	// TrigError marks a 500 (retries exhausted, or the model failed).
	TrigError
	// TrigShed marks a 429 shed by queue backpressure.
	TrigShed
	// TrigRetry marks a request that needed at least one predict retry
	// after a recovered panic.
	TrigRetry
	// TrigDegraded marks a predict that fell back to the flat AM scan
	// after a shard failure.
	TrigDegraded
	// TrigSlow marks a request slower than its model's latency
	// objective.
	TrigSlow
)

// triggerNames orders the bit names for String.
var triggerNames = []struct {
	bit  Trigger
	name string
}{
	{TrigTimeout, "timeout"},
	{TrigError, "error"},
	{TrigShed, "shed"},
	{TrigRetry, "retry"},
	{TrigDegraded, "degraded"},
	{TrigSlow, "slow"},
}

// String renders the set bits pipe-joined ("timeout|retry"), "none"
// for zero. Dump-path only; it allocates.
func (t Trigger) String() string {
	if t == 0 {
		return "none"
	}
	var parts []string
	for _, tn := range triggerNames {
		if t&tn.bit != 0 {
			parts = append(parts, tn.name)
		}
	}
	return strings.Join(parts, "|")
}

// Entry is one captured tail event: the request's identity, why it
// was pinned, and a copy of its span timeline.
type Entry struct {
	Seq        uint64 // 1-based capture sequence number
	ID         uint64 // request id (0 when tracing was off)
	Model      string // resolved tenant model ("" on legacy routes)
	Generation uint64 // model generation that served the request
	Trigger    Trigger
	UnixNanos  int64 // capture wall time
	Duration   time.Duration
	Dropped    int // spans the recorder had to drop
	Spans      []obs.Span
}

// Ring is the flight recorder. All methods are safe for concurrent
// use and nil-safe — a nil *Ring records nothing, so servers built
// without one pay a single pointer compare.
type Ring struct {
	mu      sync.Mutex
	entries []Entry
	next    int
	seq     uint64
	now     func() int64 // unix-nano clock, swappable in tests
}

// NewRing returns a recorder keeping the last keep captures of up to
// spanCap spans each, fully preallocated. keep < 1 returns nil (the
// disabled recorder).
func NewRing(keep, spanCap int) *Ring {
	if keep < 1 {
		return nil
	}
	if spanCap < 1 {
		spanCap = 1
	}
	r := &Ring{
		entries: make([]Entry, keep),
		now:     func() int64 { return time.Now().UnixNano() },
	}
	for i := range r.entries {
		r.entries[i].Spans = make([]obs.Span, 0, spanCap)
	}
	return r
}

// Capture pins one finished request into the ring: metadata always,
// plus a copy of rec's spans when tracing ran (rec may be nil). The
// caller must be done writing spans. A zero trigger is a no-op, so
// callers can unconditionally hand over their accumulated bits.
// Allocation-free: span copies land in the slot's preallocated
// backing array (overflow beyond its capacity is counted in Dropped).
func (r *Ring) Capture(rec *obs.Spans, model string, generation uint64, trig Trigger, dur time.Duration) {
	if r == nil || trig == 0 {
		return
	}
	r.mu.Lock()
	e := &r.entries[r.next]
	r.next = (r.next + 1) % len(r.entries)
	r.seq++
	e.Seq = r.seq
	e.Model = model
	e.Generation = generation
	e.Trigger = trig
	e.UnixNanos = r.now()
	e.Duration = dur
	e.ID = 0
	e.Dropped = 0
	e.Spans = e.Spans[:0]
	if rec != nil {
		e.ID = rec.ID
		e.Dropped = rec.Dropped()
		n := rec.Len()
		if over := n - cap(e.Spans); over > 0 {
			e.Dropped += over
			n = cap(e.Spans)
		}
		for i := 0; i < n; i++ {
			e.Spans = append(e.Spans, rec.Span(i))
		}
	}
	r.mu.Unlock()
}

// Captures returns how many tail events have ever been captured.
func (r *Ring) Captures() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Len returns how many captures the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.seq)
	if n > len(r.entries) {
		n = len(r.entries)
	}
	return n
}

// Snapshot returns deep copies of the held captures, oldest first,
// optionally scoped to one model ("" keeps all). Dump path: allocates.
func (r *Ring) Snapshot(model string) []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := int(r.seq)
	if held > len(r.entries) {
		held = len(r.entries)
	}
	start := r.next - held
	if start < 0 {
		start += len(r.entries)
	}
	out := make([]Entry, 0, held)
	for i := 0; i < held; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if model != "" && e.Model != model {
			continue
		}
		e.Spans = append([]obs.Span(nil), e.Spans...)
		out = append(out, e)
	}
	return out
}

// Summary is the compact per-capture record of ?summary=1 — what
// hdload attaches to capacity reports as tail-event evidence.
type Summary struct {
	Seq        uint64  `json:"seq"`
	Request    uint64  `json:"request"`
	Model      string  `json:"model"`
	Generation uint64  `json:"generation"`
	Trigger    string  `json:"trigger"`
	UnixNanos  int64   `json:"unix_ns"`
	DurationMs float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
}

// Summaries returns the held captures as compact summaries, oldest
// first, optionally scoped to one model.
func (r *Ring) Summaries(model string) []Summary {
	entries := r.Snapshot(model)
	out := make([]Summary, 0, len(entries))
	for _, e := range entries {
		out = append(out, Summary{
			Seq:        e.Seq,
			Request:    e.ID,
			Model:      e.Model,
			Generation: e.Generation,
			Trigger:    e.Trigger.String(),
			UnixNanos:  e.UnixNanos,
			DurationMs: float64(e.Duration) / 1e6,
			Spans:      len(e.Spans),
		})
	}
	return out
}

// summaryDoc is the ?summary=1 JSON envelope.
type summaryDoc struct {
	Captures uint64    `json:"captures"`
	Entries  []Summary `json:"entries"`
}

// WriteSummary renders the compact JSON summary of the held captures.
func (r *Ring) WriteSummary(w io.Writer, model string) error {
	doc := summaryDoc{Captures: r.Captures(), Entries: r.Summaries(model)}
	if doc.Entries == nil {
		doc.Entries = []Summary{}
	}
	return json.NewEncoder(w).Encode(doc)
}

// traceEvent and chromeTrace mirror the Trace Event Format JSON the
// obs exporter emits (its types are unexported); chrome://tracing and
// Perfetto load either.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the held captures as Chrome trace-event
// JSON, one process per capture labelled with sequence number, model,
// generation and trigger; span slices mirror the /debug/spans layout
// (track 0 the request tree, higher tracks the shard fan-out).
func (r *Ring) WriteChromeTrace(w io.Writer, model string) error {
	evs := []traceEvent{}
	for pid, e := range r.Snapshot(model) {
		evs = appendEntryEvents(evs, e, pid+1)
	}
	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}

// appendEntryEvents renders one capture as one trace process.
func appendEntryEvents(evs []traceEvent, e Entry, pid int) []traceEvent {
	label := "flight " + utoa(e.Seq) + " · " + e.Trigger.String()
	if e.Model != "" {
		label += " · " + e.Model + "@" + utoa(e.Generation)
	}
	evs = append(evs, traceEvent{
		Name: "process_name", Phase: "M", Pid: pid,
		Args: map[string]any{"name": label},
	}, traceEvent{
		Name: "process_sort_index", Phase: "M", Pid: pid,
		Args: map[string]any{"sort_index": pid},
	})
	tracks := map[int32]bool{}
	for i, sp := range e.Spans {
		if !tracks[sp.Track] {
			tracks[sp.Track] = true
			name := "request"
			if sp.Track > 0 {
				name = "shard fan-out"
			}
			evs = append(evs, traceEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: int(sp.Track),
				Args: map[string]any{"name": name},
			})
		}
		end := sp.End
		if end < sp.Start {
			end = sp.Start
		}
		args := map[string]any{
			"span": i, "parent": int(sp.Parent),
			"request": e.ID, "model": e.Model, "generation": e.Generation,
			"trigger": e.Trigger.String(),
		}
		for _, a := range sp.Attrs {
			if a.Key != "" {
				args[a.Key] = a.Value
			}
		}
		dur := (end - sp.Start) / 1e3
		if dur < 1 {
			dur = 1
		}
		evs = append(evs, traceEvent{
			Name: sp.Name, Phase: "X", Ts: sp.Start / 1e3, Dur: dur,
			Pid: pid, Tid: int(sp.Track), Cat: "flight", Args: args,
		})
	}
	return evs
}

// utoa formats a uint64 for trace process labels.
func utoa(v uint64) string {
	var digits [20]byte
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(digits[i:])
}
