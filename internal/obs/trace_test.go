package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pulphd/internal/pulp"
)

// runTableChains drives the Table 2/3 style platform set through a
// trace: the real wiring (Platform.Tracer) exercised end to end.
func runTableChains(t *testing.T) *Trace {
	t.Helper()
	tr := NewTrace()
	work := []pulp.KernelWork{
		{Name: "MAP+ENCODERS", Items: 313, Regions: 2, DMABytes: 10016},
		{Name: "AM", Items: 313, Regions: 1, DMABytes: 6260},
	}
	for i := range work {
		work[i].Parallel.Add(0, 313*50) // some load traffic
		work[i].Parallel.AddLoop(313)
	}
	for _, p := range []pulp.Platform{
		pulp.CortexM4Platform(),
		pulp.PULPv3Platform(1),
		pulp.PULPv3Platform(4),
		pulp.WolfPlatform(8, true),
	} {
		p.Tracer = tr
		p.RunChain(work)
	}
	return tr
}

func TestTraceRecordsEveryKernel(t *testing.T) {
	tr := runTableChains(t)
	if got, want := tr.Len(), 4*2; got != want {
		t.Fatalf("trace holds %d events, want %d", got, want)
	}
	// Kernels on one platform must tile the timeline back to back.
	pt := tr.index["PULPv3 4-core/4"]
	if pt == nil {
		t.Fatal("PULPv3 4-core timeline missing")
	}
	if pt.events[0].Start != 0 {
		t.Fatalf("first kernel starts at %d", pt.events[0].Start)
	}
	if want := pt.events[0].Result.Total(); pt.events[1].Start != want {
		t.Fatalf("second kernel starts at %d, want %d", pt.events[1].Start, want)
	}
}

// chromeEvent mirrors the trace-event schema for parsing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    *int64         `json:"ts"`
	Dur   int64          `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat"`
	Args  map[string]any `json:"args"`
}

// TestChromeTraceIsValidJSON pins the acceptance criterion: the
// export parses as Chrome trace-event JSON, every complete event
// carries the required fields, and the per-lane durations add back up
// to the simulator's cycle accounting.
func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := runTableChains(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit %q", parsed.DisplayTimeUnit)
	}
	var slices, meta int
	lanes := map[string]int64{}
	for _, ev := range parsed.TraceEvents {
		switch ev.Phase {
		case "X":
			slices++
			if ev.Name == "" || ev.Ts == nil || ev.Dur <= 0 || ev.Pid <= 0 {
				t.Fatalf("malformed complete event: %+v", ev)
			}
			if ev.Tid < 0 || ev.Tid >= len(laneNames) || ev.Cat != laneNames[ev.Tid] {
				t.Fatalf("event lane/category mismatch: %+v", ev)
			}
			lanes[ev.Cat] += ev.Dur
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if slices == 0 || meta == 0 {
		t.Fatalf("degenerate trace: %d slices, %d metadata events", slices, meta)
	}
	// Cross-check against the recorder's own accounting.
	var want [5]int64
	for _, pt := range tr.platforms {
		for _, ev := range pt.events {
			want[laneCompute] += ev.Result.ComputeCycles
			want[laneSerial] += ev.Result.SerialCycles
			want[laneRuntime] += ev.Result.RuntimeCycles
			want[laneDMA] += ev.Result.DMACycles
			want[laneDMAHidden] += ev.Result.HiddenDMACycles
		}
	}
	for tid, lane := range laneNames {
		if lanes[lane] != want[tid] {
			t.Errorf("lane %q sums to %d cycles, recorder says %d", lane, lanes[lane], want[tid])
		}
	}
}

func TestTraceSummaryTable(t *testing.T) {
	tr := runTableChains(t)
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MAP+ENCODERS", "AM", "TOTAL", "PULPv3 4-core", "dma-hidden"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}
	// One TOTAL row per platform.
	if got := strings.Count(out, "TOTAL"); got != len(tr.platforms) {
		t.Errorf("%d TOTAL rows for %d platforms", got, len(tr.platforms))
	}
}
