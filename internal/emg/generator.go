package emg

import (
	"fmt"
	"math"
	"math/rand"
)

// Gesture enumerates the classes of the recognition task: "four common
// hand gestures: closed hand, open hand, 2-finger pinch, and point
// index. It also includes the rest position" (§4).
type Gesture int

// The five classes of the EMG task.
const (
	Rest Gesture = iota
	ClosedHand
	OpenHand
	Pinch2Finger
	PointIndex
	NumGestures
)

// String returns the gesture name.
func (g Gesture) String() string {
	switch g {
	case Rest:
		return "rest"
	case ClosedHand:
		return "closed-hand"
	case OpenHand:
		return "open-hand"
	case Pinch2Finger:
		return "2-finger-pinch"
	case PointIndex:
		return "point-index"
	default:
		return fmt.Sprintf("gesture(%d)", int(g))
	}
}

// Protocol describes a recording campaign. DefaultProtocol matches the
// paper's §4 setup.
type Protocol struct {
	Subjects     int
	Channels     int
	SampleRate   float64 // Hz
	TrialSeconds float64
	Repetitions  int // trials per gesture per subject
	// Difficulty scales the within-class variability relative to the
	// between-class separation; 1.0 is calibrated so the HD classifier
	// lands near the paper's 92% mean accuracy with SVM a few points
	// below.
	Difficulty float64
	// ArtifactRate is the expected number of motion/contact artifacts
	// per trial: short bursts where one electrode reports large
	// spurious amplitude. Wearable EMG is dominated by such events;
	// they are what separates robust encodings from fragile ones.
	ArtifactRate float64
	// Drift adds systematic non-stationarity across a session: by the
	// final repetition each channel's gain has moved by up to ±Drift
	// (electrode gel drying, band migration). 0 disables it.
	Drift float64
	Seed  int64
}

// DefaultProtocol returns the §4 recording protocol: 5 subjects, 4
// channels at 500 Hz, 3 s trials, 10 repetitions per gesture.
func DefaultProtocol() Protocol {
	return Protocol{
		Subjects:     5,
		Channels:     4,
		SampleRate:   500,
		TrialSeconds: 3,
		Repetitions:  10,
		Difficulty:   1.0,
		ArtifactRate: 2.2,
		Seed:         2018,
	}
}

// Trial is one recorded gesture execution: Raw[t][channel] holds the
// raw EMG sample in mV as produced by the 16-bit front end.
type Trial struct {
	Subject int
	Gesture Gesture
	Rep     int
	Raw     [][]float64
}

// Dataset is a complete recording campaign.
type Dataset struct {
	Protocol Protocol
	Trials   []Trial
}

// maxActivation is the peak envelope amplitude in mV; "the amplitude
// of signal typically ranges from 0 to 21 mV" (§3).
const maxActivation = 18.0

// synergy returns the per-channel envelope activation (mV) of a
// gesture for one subject. The base pattern encodes which forearm
// muscles drive each gesture; each subject perturbs gains and mixes a
// little crosstalk, modelling electrode placement differences.
func synergy(g Gesture, channels int, subjRng *rand.Rand, difficulty float64) []float64 {
	// Base patterns for the four physical channels; higher channel
	// counts tile and phase-shift these (the §5.2 scalability sweep
	// replicates electrodes over the forearm).
	base := [NumGestures][4]float64{
		Rest:         {0.8, 0.8, 0.8, 0.8},
		ClosedHand:   {16, 13, 4, 6},
		OpenHand:     {4, 6, 15, 12},
		Pinch2Finger: {12, 4, 11, 3},
		PointIndex:   {5, 14, 3, 13},
	}
	out := make([]float64, channels)
	for c := 0; c < channels; c++ {
		v := base[g][c%4]
		// Replicated electrodes see attenuated, slightly shifted
		// versions of the same muscles.
		if c >= 4 {
			v *= 0.7 + 0.3*math.Sin(float64(c)*0.7+float64(g))
			if v < 0.5 {
				v = 0.5
			}
		}
		// Subject-specific gain (electrode placement, skin impedance).
		gain := 1 + 0.18*difficulty*subjRng.NormFloat64()
		if gain < 0.4 {
			gain = 0.4
		}
		out[c] = v * gain
		if out[c] > maxActivation {
			out[c] = maxActivation
		}
	}
	return out
}

// trapezoid is the gesture intensity profile over a trial: ramp up,
// hold, ramp down, expressed in [0,1] for t in [0,1].
func trapezoid(t float64) float64 {
	const ramp = 0.15
	switch {
	case t < ramp:
		return t / ramp
	case t > 1-ramp:
		return (1 - t) / ramp
	default:
		return 1
	}
}

// Generate synthesizes a complete dataset under the protocol. The
// generator is deterministic in Protocol.Seed.
func Generate(p Protocol) *Dataset {
	if p.Subjects < 1 || p.Channels < 1 || p.Repetitions < 1 {
		panic(fmt.Sprintf("emg: Generate: invalid protocol %+v", p))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	samples := int(p.SampleRate * p.TrialSeconds)
	ds := &Dataset{Protocol: p}
	for s := 0; s < p.Subjects; s++ {
		subjRng := rand.New(rand.NewSource(p.Seed + int64(s)*7919))
		// Per-subject synergy matrix, fixed across repetitions.
		syn := make([][]float64, NumGestures)
		for g := Gesture(0); g < NumGestures; g++ {
			syn[g] = synergy(g, p.Channels, subjRng, p.Difficulty)
		}
		humAmp := 0.4 + 0.3*subjRng.Float64() // mV of 50 Hz interference
		// Session drift direction per channel, fixed for the subject.
		driftDir := make([]float64, p.Channels)
		for c := range driftDir {
			driftDir[c] = 2*subjRng.Float64() - 1
		}
		for g := Gesture(0); g < NumGestures; g++ {
			for rep := 0; rep < p.Repetitions; rep++ {
				raw := make([][]float64, samples)
				// Trial-level excursion: the subject contracts a bit
				// differently every repetition, globally and per
				// muscle (electrode shift, fatigue, posture).
				repGain := 1 + 0.12*p.Difficulty*rng.NormFloat64()
				if repGain < 0.3 {
					repGain = 0.3
				}
				chanGain := make([]float64, p.Channels)
				progress := float64(rep) / float64(p.Repetitions)
				for c := range chanGain {
					drift := 1 + p.Drift*driftDir[c]*progress
					chanGain[c] = repGain * drift * (1 + 0.15*p.Difficulty*rng.NormFloat64())
					if chanGain[c] < 0.2 {
						chanGain[c] = 0.2
					}
				}
				phase := rng.Float64() * 2 * math.Pi
				for t := 0; t < samples; t++ {
					row := make([]float64, p.Channels)
					tt := float64(t) / float64(samples)
					env := trapezoid(tt)
					for c := 0; c < p.Channels; c++ {
						amp := syn[g][c] * chanGain[c]
						if g == Rest {
							amp = syn[g][c] // rest does not ramp
						} else {
							amp = 0.8 + (amp-0.8)*env
						}
						// Surface EMG is well modelled as
						// amplitude-modulated zero-mean broadband noise.
						carrier := rng.NormFloat64() * amp
						hum := humAmp * math.Sin(2*math.Pi*50*float64(t)/p.SampleRate+phase)
						sensor := 0.15 * rng.NormFloat64() // front-end noise floor
						row[c] = carrier + hum + sensor
					}
					raw[t] = row
				}
				injectArtifacts(raw, p, rng)
				ds.Trials = append(ds.Trials, Trial{Subject: s, Gesture: g, Rep: rep, Raw: raw})
			}
		}
	}
	return ds
}

// injectArtifacts superimposes motion/contact artifacts: bursts of
// large-amplitude broadband noise on a single electrode, the dominant
// disturbance of wearable EMG. Their count per trial is geometric with
// mean ArtifactRate·Difficulty; each lasts 100–400 ms.
func injectArtifacts(raw [][]float64, p Protocol, rng *rand.Rand) {
	mean := p.ArtifactRate * p.Difficulty
	if mean <= 0 {
		return
	}
	n := 0
	for rng.Float64() < mean/(1+mean) {
		n++
		if n > 10 {
			break
		}
	}
	for i := 0; i < n; i++ {
		ch := rng.Intn(p.Channels)
		dur := int((0.15 + 0.35*rng.Float64()) * p.SampleRate)
		start := rng.Intn(len(raw))
		// Heavy-tailed burst amplitude: cable snags rail the analog
		// front end far beyond any muscle activity, so test-time
		// artifacts routinely exceed everything seen in training.
		amp := 8 + 24*rng.Float64()
		if rng.Float64() < 0.5 {
			amp = 40 + 160*rng.Float64()
		}
		for t := start; t < start+dur && t < len(raw); t++ {
			raw[t][ch] += rng.NormFloat64() * amp
		}
	}
}

// SubjectTrials returns the trials belonging to one subject.
func (d *Dataset) SubjectTrials(subject int) []Trial {
	var out []Trial
	for _, tr := range d.Trials {
		if tr.Subject == subject {
			out = append(out, tr)
		}
	}
	return out
}

// Split partitions trials of one subject into a training set and the
// full evaluation set following §4.1: "the model training is done per
// subject and off-line using 25% of the dataset, while the entire
// dataset is used for testing". Training takes the first
// ceil(0.25·reps) repetitions of each gesture.
func (d *Dataset) Split(subject int) (train, test []Trial) {
	trainReps := (d.Protocol.Repetitions + 3) / 4
	for _, tr := range d.SubjectTrials(subject) {
		if tr.Rep < trainReps {
			train = append(train, tr)
		}
		test = append(test, tr)
	}
	return train, test
}

// Windows slices a preprocessed trial (env[t][ch]) into consecutive
// non-overlapping classification windows of the given length,
// discarding the settling transient of the envelope filter and the
// ramp edges so each window carries a steady gesture.
func Windows(env [][]float64, window int) [][][]float64 {
	if window < 1 {
		panic(fmt.Sprintf("emg: Windows: bad window %d", window))
	}
	// Skip the first and last 20% of the trial (filter settling +
	// trapezoid ramps).
	lo := len(env) / 5
	hi := len(env) - len(env)/5
	var out [][][]float64
	for t := lo; t+window <= hi; t += window {
		out = append(out, env[t:t+window])
	}
	return out
}
