package emg

import (
	"math"
	"math/rand"
	"testing"
)

func TestNotchRemovesPowerline(t *testing.T) {
	const fs = 500.0
	notch := NewNotch(50, 30, fs)
	// Feed a pure 50 Hz tone; after settling, the output must be tiny.
	var maxTail float64
	for i := 0; i < 2000; i++ {
		y := notch.Step(math.Sin(2 * math.Pi * 50 * float64(i) / fs))
		if i > 1000 && math.Abs(y) > maxTail {
			maxTail = math.Abs(y)
		}
	}
	if maxTail > 0.05 {
		t.Fatalf("50 Hz residue %.3f after notch", maxTail)
	}
}

func TestNotchPassesBand(t *testing.T) {
	const fs = 500.0
	notch := NewNotch(50, 30, fs)
	// A 120 Hz tone (inside the EMG band) must pass nearly unattenuated.
	var maxTail float64
	for i := 0; i < 2000; i++ {
		y := notch.Step(math.Sin(2 * math.Pi * 120 * float64(i) / fs))
		if i > 1000 && math.Abs(y) > maxTail {
			maxTail = math.Abs(y)
		}
	}
	if maxTail < 0.9 {
		t.Fatalf("120 Hz passband amplitude %.3f, want ≈1", maxTail)
	}
}

func TestLowPassSmoothes(t *testing.T) {
	const fs = 500.0
	lp := NewLowPass(4, fs)
	// DC gain must be ~1.
	var y float64
	for i := 0; i < 3000; i++ {
		y = lp.Step(1)
	}
	if math.Abs(y-1) > 0.01 {
		t.Fatalf("DC gain %.3f, want 1", y)
	}
	// A 100 Hz tone must be strongly attenuated.
	lp.Reset()
	var maxTail float64
	for i := 0; i < 3000; i++ {
		v := lp.Step(math.Sin(2 * math.Pi * 100 * float64(i) / fs))
		if i > 1500 && math.Abs(v) > maxTail {
			maxTail = math.Abs(v)
		}
	}
	if maxTail > 0.01 {
		t.Fatalf("100 Hz leak %.4f through 4 Hz low-pass", maxTail)
	}
}

func TestBiquadApplyResets(t *testing.T) {
	lp := NewLowPass(4, 500)
	x := make([]float64, 100)
	for i := range x {
		x[i] = 1
	}
	a := lp.Apply(x)
	b := lp.Apply(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Apply is stateful across calls")
		}
	}
}

func TestPreprocessorEnvelopeTracksActivation(t *testing.T) {
	// Amplitude-modulated noise in → envelope ≈ modulation amplitude out.
	const fs = 500.0
	rng := rand.New(rand.NewSource(1))
	p := NewPreprocessor(1, fs, 4, math.Sqrt(math.Pi/2))
	const amp = 10.0
	raw := make([][]float64, 3000)
	for t := range raw {
		raw[t] = []float64{rng.NormFloat64() * amp}
	}
	env := p.Process(raw)
	// After settling, the envelope should sit near amp (gain compensates
	// the rectified-Gaussian mean of amp·sqrt(2/π)).
	var sum float64
	n := 0
	for t := 1500; t < 3000; t++ {
		sum += env[t][0]
		n++
	}
	mean := sum / float64(n)
	if mean < amp*0.8 || mean > amp*1.2 {
		t.Fatalf("envelope mean %.2f for activation %.2f", mean, amp)
	}
}

func TestPreprocessorRejectsWrongShape(t *testing.T) {
	p := NewPreprocessor(4, 500, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong channel count")
		}
	}()
	p.Process([][]float64{{1, 2, 3}})
}

func TestGenerateShape(t *testing.T) {
	p := DefaultProtocol()
	ds := Generate(p)
	wantTrials := p.Subjects * int(NumGestures) * p.Repetitions
	if len(ds.Trials) != wantTrials {
		t.Fatalf("%d trials, want %d", len(ds.Trials), wantTrials)
	}
	tr := ds.Trials[0]
	if len(tr.Raw) != int(p.SampleRate*p.TrialSeconds) {
		t.Fatalf("%d samples per trial, want %d", len(tr.Raw), int(p.SampleRate*p.TrialSeconds))
	}
	if len(tr.Raw[0]) != p.Channels {
		t.Fatalf("%d channels, want %d", len(tr.Raw[0]), p.Channels)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultProtocol())
	b := Generate(DefaultProtocol())
	if a.Trials[7].Raw[100][2] != b.Trials[7].Raw[100][2] {
		t.Fatal("same seed produced different data")
	}
	p := DefaultProtocol()
	p.Seed++
	c := Generate(p)
	if a.Trials[7].Raw[100][2] == c.Trials[7].Raw[100][2] {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGestureSeparability(t *testing.T) {
	// Envelopes of different gestures must differ per channel much more
	// than repetitions of the same gesture — otherwise no classifier
	// can work.
	p := DefaultProtocol()
	p.Subjects = 1
	ds := Generate(p)
	pre := NewPreprocessor(p.Channels, p.SampleRate, 4, math.Sqrt(math.Pi/2))
	mean := func(tr Trial) []float64 {
		env := pre.Process(tr.Raw)
		out := make([]float64, p.Channels)
		lo, hi := len(env)/5, len(env)-len(env)/5
		for t := lo; t < hi; t++ {
			for c := range out {
				out[c] += env[t][c]
			}
		}
		for c := range out {
			out[c] /= float64(hi - lo)
		}
		return out
	}
	centroid := make([][]float64, NumGestures)
	for g := Gesture(0); g < NumGestures; g++ {
		centroid[g] = make([]float64, p.Channels)
	}
	counts := make([]int, NumGestures)
	for _, tr := range ds.Trials {
		m := mean(tr)
		for c, v := range m {
			centroid[tr.Gesture][c] += v
		}
		counts[tr.Gesture]++
	}
	for g := range centroid {
		for c := range centroid[g] {
			centroid[g][c] /= float64(counts[g])
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	// Every pair of gesture centroids should be well separated.
	for g1 := 0; g1 < int(NumGestures); g1++ {
		for g2 := g1 + 1; g2 < int(NumGestures); g2++ {
			if d := dist(centroid[g1], centroid[g2]); d < 2 {
				t.Errorf("gestures %v/%v centroid distance %.2f too small",
					Gesture(g1), Gesture(g2), d)
			}
		}
	}
}

func TestEnvelopeWithinCIMRange(t *testing.T) {
	p := DefaultProtocol()
	p.Subjects = 1
	ds := Generate(p)
	pre := NewPreprocessor(p.Channels, p.SampleRate, 4, math.Sqrt(math.Pi/2))
	var above, total int
	for _, tr := range ds.Trials {
		env := pre.Process(tr.Raw)
		for _, row := range env {
			for _, v := range row {
				if v < 0 {
					t.Fatalf("negative envelope %.3f", v)
				}
				if v > 21 {
					above++
				}
				total++
			}
		}
	}
	// The 0–21 mV CIM range should cover nearly all envelope mass.
	if frac := float64(above) / float64(total); frac > 0.05 {
		t.Fatalf("%.1f%% of envelope samples above 21 mV", frac*100)
	}
}

func TestSplit(t *testing.T) {
	ds := Generate(DefaultProtocol())
	train, test := ds.Split(2)
	// ceil(10/4)=3 training reps per gesture × 5 gestures.
	if len(train) != 3*int(NumGestures) {
		t.Fatalf("%d training trials, want %d", len(train), 3*int(NumGestures))
	}
	if len(test) != 10*int(NumGestures) {
		t.Fatalf("%d test trials, want %d", len(test), 10*int(NumGestures))
	}
	for _, tr := range train {
		if tr.Subject != 2 {
			t.Fatal("foreign subject in split")
		}
	}
}

func TestWindows(t *testing.T) {
	env := make([][]float64, 100)
	for i := range env {
		env[i] = []float64{float64(i)}
	}
	ws := Windows(env, 5)
	// Usable region is [20,80): 12 windows of 5.
	if len(ws) != 12 {
		t.Fatalf("%d windows, want 12", len(ws))
	}
	if ws[0][0][0] != 20 {
		t.Fatalf("first window starts at %v, want 20", ws[0][0][0])
	}
	for _, w := range ws {
		if len(w) != 5 {
			t.Fatalf("window of %d samples", len(w))
		}
	}
}

func TestGestureString(t *testing.T) {
	names := map[Gesture]string{
		Rest: "rest", ClosedHand: "closed-hand", OpenHand: "open-hand",
		Pinch2Finger: "2-finger-pinch", PointIndex: "point-index",
	}
	for g, want := range names {
		if g.String() != want {
			t.Errorf("%d.String() = %q, want %q", g, g.String(), want)
		}
	}
	if Gesture(42).String() == "" {
		t.Error("unknown gesture must still render")
	}
}

func TestArtifactsRaiseEnvelopeTails(t *testing.T) {
	// With artifacts enabled, the envelope's extreme tail must grow
	// far beyond the artifact-free one — the heavy-tailed disturbance
	// the robustness comparison hinges on.
	quiet := DefaultProtocol()
	quiet.Subjects = 1
	quiet.ArtifactRate = 0
	noisy := quiet
	noisy.ArtifactRate = 3
	maxEnv := func(p Protocol) float64 {
		ds := Generate(p)
		pre := NewPreprocessor(p.Channels, p.SampleRate, 4, math.Sqrt(math.Pi/2))
		m := 0.0
		for _, tr := range ds.Trials {
			for _, row := range pre.Process(tr.Raw) {
				for _, v := range row {
					if v > m {
						m = v
					}
				}
			}
		}
		return m
	}
	q, n := maxEnv(quiet), maxEnv(noisy)
	if n < q*1.5 {
		t.Fatalf("artifact max envelope %.1f not far above clean %.1f", n, q)
	}
}

func TestDriftShiftsLateReps(t *testing.T) {
	// With Drift set, the per-channel envelope means of the final
	// repetition must move away from the first repetition's by more
	// than they do without drift.
	base := DefaultProtocol()
	base.Subjects = 1
	base.ArtifactRate = 0
	drifted := base
	drifted.Drift = 1.0
	shift := func(p Protocol) float64 {
		ds := Generate(p)
		pre := NewPreprocessor(p.Channels, p.SampleRate, 4, math.Sqrt(math.Pi/2))
		meanOf := func(tr Trial) float64 {
			env := pre.Process(tr.Raw)
			s := 0.0
			lo, hi := len(env)/5, len(env)-len(env)/5
			for t0 := lo; t0 < hi; t0++ {
				for _, v := range env[t0] {
					s += v
				}
			}
			return s / float64((hi-lo)*p.Channels)
		}
		var first, last, nF, nL float64
		for _, tr := range ds.Trials {
			if tr.Gesture == Rest {
				continue
			}
			switch tr.Rep {
			case 0:
				first += meanOf(tr)
				nF++
			case p.Repetitions - 1:
				last += meanOf(tr)
				nL++
			}
		}
		return math.Abs(last/nL - first/nF)
	}
	if shift(drifted) < shift(base)+0.3 {
		t.Fatalf("drift %.2f vs baseline %.2f: no systematic session shift", shift(drifted), shift(base))
	}
}
