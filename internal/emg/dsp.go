// Package emg provides the data substrate of the PULP-HD evaluation: a
// synthetic surface-EMG dataset mirroring the recording protocol of
// DAC'18 §4 (5 subjects, 4 forearm channels at 500 Hz, 4 hand gestures
// plus rest, 3 s per gesture repeated 10 times) and the preprocessing
// chain the paper applies before the HD classifier ("power line
// interference removal and envelope extraction", §3).
//
// The original recordings (Rahimi et al. 2016 [19]) are proprietary;
// the generator reproduces their statistical structure — per-gesture
// muscle-synergy activation patterns, inter-subject variability,
// amplitude-modulated broadband EMG carriers, 50 Hz power-line hum —
// so the downstream classifier code path and the relative
// HD-versus-SVM behaviour are preserved.
package emg

import (
	"fmt"
	"math"
)

// Biquad is a direct-form-II-transposed second-order IIR section.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewNotch designs a second-order notch filter that removes a narrow
// band around freq (the 50 Hz power-line interference) at the given
// sampling rate. q controls the notch width (typ. 30).
func NewNotch(freq, q, sampleRate float64) *Biquad {
	w0 := 2 * math.Pi * freq / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cos := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: 1 / a0,
		b1: -2 * cos / a0,
		b2: 1 / a0,
		a1: -2 * cos / a0,
		a2: (1 - alpha) / a0,
	}
}

// NewLowPass designs a second-order Butterworth low-pass section with
// the given cutoff, used for envelope smoothing after rectification.
func NewLowPass(cutoff, sampleRate float64) *Biquad {
	w0 := 2 * math.Pi * cutoff / sampleRate
	cos := math.Cos(w0)
	alpha := math.Sin(w0) / math.Sqrt2 // Q = 1/√2 → Butterworth
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cos) / 2 / a0,
		b1: (1 - cos) / a0,
		b2: (1 - cos) / 2 / a0,
		a1: -2 * cos / a0,
		a2: (1 - alpha) / a0,
	}
}

// Step filters one sample.
func (f *Biquad) Step(x float64) float64 {
	y := f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// Apply filters a whole signal into a fresh slice, resetting state
// first.
func (f *Biquad) Apply(x []float64) []float64 {
	f.Reset()
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Step(v)
	}
	return out
}

// Preprocessor implements the paper's front end: 50 Hz notch followed
// by full-wave rectification and Butterworth low-pass envelope
// extraction, one independent chain per channel. The paper executes
// this block off-platform (§3), so it carries no cycle model.
type Preprocessor struct {
	sampleRate float64
	notch      []*Biquad
	envelope   []*Biquad
	gain       float64
}

// NewPreprocessor builds a preprocessing chain for the given channel
// count and sampling rate. envelopeCutoff is the smoothing bandwidth
// in Hz (typ. 4 Hz for gesture recognition). gain rescales the
// rectified mean to physical envelope units so a fully activated
// channel lands near the top of the CIM range.
func NewPreprocessor(channels int, sampleRate, envelopeCutoff, gain float64) *Preprocessor {
	if channels < 1 {
		panic(fmt.Sprintf("emg: NewPreprocessor: bad channel count %d", channels))
	}
	p := &Preprocessor{
		sampleRate: sampleRate,
		notch:      make([]*Biquad, channels),
		envelope:   make([]*Biquad, channels),
		gain:       gain,
	}
	for i := 0; i < channels; i++ {
		p.notch[i] = NewNotch(50, 30, sampleRate)
		p.envelope[i] = NewLowPass(envelopeCutoff, sampleRate)
	}
	return p
}

// Channels returns the number of independent chains.
func (p *Preprocessor) Channels() int { return len(p.notch) }

// Process converts raw multichannel EMG (raw[t][ch], in mV) into the
// per-sample envelope representation consumed by the CIM. The output
// has the same shape as the input.
func (p *Preprocessor) Process(raw [][]float64) [][]float64 {
	for i := range p.notch {
		p.notch[i].Reset()
		p.envelope[i].Reset()
	}
	out := make([][]float64, len(raw))
	for t, row := range raw {
		if len(row) != len(p.notch) {
			panic(fmt.Sprintf("emg: Process: sample %d has %d channels, want %d", t, len(row), len(p.notch)))
		}
		o := make([]float64, len(row))
		for c, x := range row {
			y := p.notch[c].Step(x)
			y = math.Abs(y) // full-wave rectification
			e := p.envelope[c].Step(y) * p.gain
			if e < 0 {
				e = 0 // filter transients can undershoot; envelopes are nonnegative
			}
			o[c] = e
		}
		out[t] = o
	}
	return out
}
