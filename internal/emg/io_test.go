package emg

import (
	"bytes"
	"testing"
)

func smallDataset() *Dataset {
	p := DefaultProtocol()
	p.Subjects = 1
	p.Repetitions = 2
	p.TrialSeconds = 0.2
	return Generate(p)
}

func TestDatasetRoundTrip(t *testing.T) {
	ds := smallDataset()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != ds.Protocol {
		t.Fatalf("protocol changed: %+v vs %+v", got.Protocol, ds.Protocol)
	}
	if len(got.Trials) != len(ds.Trials) {
		t.Fatalf("%d trials, want %d", len(got.Trials), len(ds.Trials))
	}
	for i := range ds.Trials {
		a, b := &ds.Trials[i], &got.Trials[i]
		if a.Subject != b.Subject || a.Gesture != b.Gesture || a.Rep != b.Rep {
			t.Fatalf("trial %d metadata changed", i)
		}
		for ti := range a.Raw {
			for c := range a.Raw[ti] {
				// float32 storage: compare at float32 precision.
				if float32(a.Raw[ti][c]) != float32(b.Raw[ti][c]) {
					t.Fatalf("trial %d sample %d ch %d: %g vs %g",
						i, ti, c, a.Raw[ti][c], b.Raw[ti][c])
				}
			}
		}
	}
}

func TestDatasetReadRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("not a dataset at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDatasetReadDetectsCorruption(t *testing.T) {
	ds := smallDataset()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	blob[len(blob)/2] ^= 0x01
	if _, err := ReadDataset(bytes.NewReader(blob)); err == nil {
		t.Fatal("corrupted dataset accepted")
	}
}

func TestDatasetReadRejectsTruncation(t *testing.T) {
	ds := smallDataset()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, cut := range []int{8, 40, len(blob) / 2, len(blob) - 2} {
		if _, err := ReadDataset(bytes.NewReader(blob[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDatasetReadRejectsImplausibleHeader(t *testing.T) {
	ds := smallDataset()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Overwrite the subject count (first header word).
	for i := 0; i < 8; i++ {
		blob[8+i] = 0xee
	}
	if _, err := ReadDataset(bytes.NewReader(blob)); err == nil {
		t.Fatal("absurd subject count accepted")
	}
}
