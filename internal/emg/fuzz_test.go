package emg

import (
	"bytes"
	"testing"
)

// FuzzEMGIO feeds arbitrary bytes to the dataset parser. The contract
// under attack: ReadDataset on untrusted input returns an error or a
// dataset — never a panic, and never memory proportional to a corrupt
// header's claims rather than to the input itself. Accepted inputs
// must survive a write/read round trip (the parser and serializer
// agree on the format).
func FuzzEMGIO(f *testing.F) {
	// Seed with a valid archive and targeted corruptions of it, so the
	// fuzzer starts inside the format instead of rediscovering the
	// magic.
	p := DefaultProtocol()
	p.Subjects = 1
	p.Repetitions = 1
	p.TrialSeconds = 0.02
	var buf bytes.Buffer
	if err := Generate(p).Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])              // magic only
	f.Add(valid[:len(valid)/2])   // truncated mid-trial
	f.Add(valid[:len(valid)-1])   // missing checksum byte
	f.Add([]byte("PHDEMG01"))     // bare magic
	f.Add([]byte{})               // empty
	f.Add(bytes.Repeat(valid, 2)) // trailing garbage
	huge := append([]byte(nil), valid...)
	for i := 88; i < 96 && i < len(huge); i++ {
		huge[i] = 0xff // trial count field → implausible
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize and re-parse cleanly.
		var out bytes.Buffer
		if err := d.Write(&out); err != nil {
			// Write re-validates row shapes; a parsed dataset always has
			// consistent ones.
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		if _, err := ReadDataset(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip of accepted dataset failed: %v", err)
		}
	})
}
