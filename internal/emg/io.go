package emg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Dataset serialization: a compact binary container so a generated
// campaign can be archived and re-analyzed byte-identically (the role
// a recordings release plays for the original study). Layout: magic,
// protocol header, trial records (subject, gesture, rep, float32
// samples), CRC-32 trailer over everything after the magic.

var datasetMagic = [8]byte{'P', 'H', 'D', 'E', 'M', 'G', '0', '1'}

// ioLimits guard the reader against corrupt headers.
const (
	maxIOSubjects = 1 << 10
	maxIOChannels = 1 << 12
	maxIOTrials   = 1 << 20
	maxIOSamples  = 1 << 24
)

// Write serializes the dataset.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(datasetMagic[:]); err != nil {
		return fmt.Errorf("emg: write magic: %w", err)
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	head := []uint64{
		uint64(d.Protocol.Subjects),
		uint64(d.Protocol.Channels),
		math.Float64bits(d.Protocol.SampleRate),
		math.Float64bits(d.Protocol.TrialSeconds),
		uint64(d.Protocol.Repetitions),
		math.Float64bits(d.Protocol.Difficulty),
		math.Float64bits(d.Protocol.ArtifactRate),
		math.Float64bits(d.Protocol.Drift),
		uint64(d.Protocol.Seed),
		uint64(len(d.Trials)),
	}
	if err := binary.Write(out, binary.LittleEndian, head); err != nil {
		return fmt.Errorf("emg: write header: %w", err)
	}
	for i := range d.Trials {
		tr := &d.Trials[i]
		meta := []uint32{uint32(tr.Subject), uint32(tr.Gesture), uint32(tr.Rep), uint32(len(tr.Raw))}
		if err := binary.Write(out, binary.LittleEndian, meta); err != nil {
			return fmt.Errorf("emg: write trial %d: %w", i, err)
		}
		row := make([]float32, d.Protocol.Channels)
		for _, samples := range tr.Raw {
			if len(samples) != d.Protocol.Channels {
				return fmt.Errorf("emg: trial %d has %d channels, want %d", i, len(samples), d.Protocol.Channels)
			}
			for c, v := range samples {
				row[c] = float32(v)
			}
			if err := binary.Write(out, binary.LittleEndian, row); err != nil {
				return fmt.Errorf("emg: write trial %d: %w", i, err)
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("emg: write checksum: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("emg: flush: %w", err)
	}
	return nil
}

// ReadDataset deserializes a dataset written by Write.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("emg: read magic: %w", err)
	}
	if magic != datasetMagic {
		return nil, fmt.Errorf("emg: bad magic %q", magic)
	}
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)
	head := make([]uint64, 10)
	if err := binary.Read(in, binary.LittleEndian, head); err != nil {
		return nil, fmt.Errorf("emg: read header: %w", err)
	}
	d := &Dataset{Protocol: Protocol{
		Subjects:     int(head[0]),
		Channels:     int(head[1]),
		SampleRate:   math.Float64frombits(head[2]),
		TrialSeconds: math.Float64frombits(head[3]),
		Repetitions:  int(head[4]),
		Difficulty:   math.Float64frombits(head[5]),
		ArtifactRate: math.Float64frombits(head[6]),
		Drift:        math.Float64frombits(head[7]),
		Seed:         int64(head[8]),
	}}
	trials := int(head[9])
	switch {
	case d.Protocol.Subjects < 1 || d.Protocol.Subjects > maxIOSubjects,
		d.Protocol.Channels < 1 || d.Protocol.Channels > maxIOChannels,
		trials < 0 || trials > maxIOTrials:
		return nil, fmt.Errorf("emg: implausible header (%d subjects, %d channels, %d trials)",
			d.Protocol.Subjects, d.Protocol.Channels, trials)
	}
	for i := 0; i < trials; i++ {
		meta := make([]uint32, 4)
		if err := binary.Read(in, binary.LittleEndian, meta); err != nil {
			return nil, fmt.Errorf("emg: read trial %d: %w", i, err)
		}
		nSamples := int(meta[3])
		if nSamples < 0 || nSamples > maxIOSamples {
			return nil, fmt.Errorf("emg: trial %d claims %d samples", i, nSamples)
		}
		tr := Trial{
			Subject: int(meta[0]),
			Gesture: Gesture(meta[1]),
			Rep:     int(meta[2]),
			// Grown sample by sample, capped initial capacity: a corrupt
			// count can only cost memory proportional to the bytes the
			// stream actually delivers, not the claimed maxIOSamples.
			Raw: make([][]float64, 0, min(nSamples, 1024)),
		}
		row := make([]float32, d.Protocol.Channels)
		for t := 0; t < nSamples; t++ {
			if err := binary.Read(in, binary.LittleEndian, row); err != nil {
				return nil, fmt.Errorf("emg: read trial %d sample %d: %w", i, t, err)
			}
			s := make([]float64, d.Protocol.Channels)
			for c, v := range row {
				s[c] = float64(v)
			}
			tr.Raw = append(tr.Raw, s)
		}
		d.Trials = append(d.Trials, tr)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("emg: read checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("emg: checksum mismatch: stored %08x, computed %08x", got, want)
	}
	return d, nil
}
