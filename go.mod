module pulphd

go 1.22
