// Package pulphd is the root of a Go reproduction of "PULP-HD:
// Accelerating Brain-Inspired High-Dimensional Computing on a Parallel
// Ultra-Low Power Platform" (Montagna et al., DAC 2018).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); runnable entry points are cmd/pulphd and the
// programs under examples/. The root package exists to host the
// repository-wide benchmark suite (bench_test.go), one benchmark per
// table and figure of the paper's evaluation.
package pulphd
