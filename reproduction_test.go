package pulphd

import (
	"testing"

	"pulphd/internal/experiments"
)

// TestReproductionHeadlines is the repository's single-source
// integration check: every headline claim of the paper, asserted
// against the full default campaign. It is the slowest test in the
// tree (≈1 min); -short skips it and relies on the per-package tests.
func TestReproductionHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign reproduction check skipped in -short mode")
	}
	p := prepared()

	t.Run("accuracy", func(t *testing.T) {
		r, err := experiments.Accuracy(p, 10000)
		if err != nil {
			t.Fatal(err)
		}
		// Paper: HD 92.4 %, SVM 89.6 %.
		if r.MeanHD < 0.89 || r.MeanHD > 0.96 {
			t.Errorf("HD mean accuracy %.3f outside the paper's neighbourhood of 0.924", r.MeanHD)
		}
		if r.MeanHD <= r.MeanSVM {
			t.Errorf("HD (%.3f) must beat the SVM (%.3f)", r.MeanHD, r.MeanSVM)
		}
		if gap := r.MeanHD - r.MeanSVM; gap < 0.005 || gap > 0.08 {
			t.Errorf("HD−SVM gap %.3f; paper reports ≈0.028", gap)
		}
	})

	t.Run("table1", func(t *testing.T) {
		r, err := experiments.Table1(p)
		if err != nil {
			t.Fatal(err)
		}
		// Paper: ≈2× faster at iso-accuracy.
		if ratio := r.SVMKCycles / r.HDKCycles; ratio < 1.5 || ratio > 4 {
			t.Errorf("SVM/HD cycle ratio %.2f; paper reports ≈2×", ratio)
		}
		if r.HDAccuracy < r.SVMAccuracy-0.02 {
			t.Errorf("200-D HD accuracy %.3f below SVM %.3f", r.HDAccuracy, r.SVMAccuracy)
		}
	})

	t.Run("table2", func(t *testing.T) {
		r := experiments.Table2(p)
		last := r.Rows[len(r.Rows)-1]
		if last.Boost < 9 || last.Boost > 11 {
			t.Errorf("0.5 V boost %.1f×; paper reports 9.9×", last.Boost)
		}
		if r.EnergySaving < 1.8 || r.EnergySaving > 2.2 {
			t.Errorf("energy saving %.2f×; paper reports 2×", r.EnergySaving)
		}
	})

	t.Run("table3", func(t *testing.T) {
		r := experiments.Table3(p)
		total := r.Cells[2]
		if sp := total[1].Speedup; sp < 3.4 || sp > 4.0 {
			t.Errorf("PULPv3 4-core speed-up %.2f×; paper reports 3.73×", sp)
		}
		if sp := total[4].Speedup; sp < 16 || sp > 22 {
			t.Errorf("Wolf 8-core built-in speed-up %.2f×; paper reports 18.38×", sp)
		}
	})

	t.Run("fig5", func(t *testing.T) {
		r := experiments.Fig5(p)
		lastOK := 0
		for _, row := range r.Rows {
			if row.M4MeetsBudget {
				lastOK = row.Channels
			}
		}
		if lastOK != 16 {
			t.Errorf("M4 last feasible channel count %d; paper reports 16", lastOK)
		}
	})

	t.Run("dimsweep", func(t *testing.T) {
		r := experiments.DimSweep(p, []int{10000, 200, 100})
		if r.Mean[0]-r.Mean[1] > 0.05 {
			t.Errorf("200-D dropped %.3f below 10,000-D; paper says it closely holds", r.Mean[0]-r.Mean[1])
		}
		if r.Mean[2] >= r.Mean[1] {
			t.Errorf("100-D (%.3f) should fall below 200-D (%.3f)", r.Mean[2], r.Mean[1])
		}
	})
}
